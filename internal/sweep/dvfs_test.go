package sweep

import (
	"bytes"
	"strings"
	"testing"

	"vccmin/internal/dvfs"
	"vccmin/internal/geom"
	"vccmin/internal/prob"
	"vccmin/internal/sim"
)

// The policy axis must be invisible unless used: classic specs keep
// their cell keys, grid indices and canonical hashes bit for bit, or
// every serve-layer job identity and resumable checkpoint breaks.

func TestClassicCellKeysCarryNoPolicy(t *testing.T) {
	spec := Spec{Schemes: []sim.Scheme{sim.Baseline}}.withDefaults()
	for _, c := range spec.Cells() {
		if strings.Contains(c.Key(), "policy=") {
			t.Fatalf("classic cell key %q mentions the policy axis", c.Key())
		}
	}
}

func TestCanonicalHashIgnoresDVFSFieldsWhenUnscheduled(t *testing.T) {
	base := Spec{Schemes: []sim.Scheme{sim.Baseline}}
	h := base.CanonicalHash()

	explicit := base
	explicit.Policies = []dvfs.PolicyKind{dvfs.PolicyNone}
	explicit.DVFSWorkloads = []string{"bursty-server"}
	if explicit.CanonicalHash() != h {
		t.Fatal("an unscheduled spec's hash moved when DVFS fields were spelled out")
	}

	scheduled := base
	scheduled.Policies = []dvfs.PolicyKind{dvfs.PolicyStaticHigh}
	if scheduled.CanonicalHash() == h {
		t.Fatal("adding a scheduled policy did not change the hash")
	}
	otherWorkloads := scheduled
	otherWorkloads.DVFSWorkloads = []string{"bursty-server"}
	if otherWorkloads.CanonicalHash() == scheduled.CanonicalHash() {
		t.Fatal("changing DVFS workloads on a scheduled spec did not change the hash")
	}
}

func TestScheduledCellsEvaluate(t *testing.T) {
	spec := Spec{
		Pfails:       []float64{0.001},
		Schemes:      []sim.Scheme{sim.BlockDisable},
		Policies:     []dvfs.PolicyKind{dvfs.PolicyStaticHigh, dvfs.PolicyStaticLow},
		Instructions: 6000,
		BaseSeed:     3,
	}
	var buf bytes.Buffer
	res, err := Run(spec, RunOptions{Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if res.Computed != 2 {
		t.Fatalf("computed %d cells, want 2", res.Computed)
	}
	byPolicy := map[string]Row{}
	for _, row := range res.Rows {
		if !strings.Contains(row.Key, ";policy="+row.Policy) {
			t.Errorf("scheduled key %q does not carry its policy %q", row.Key, row.Policy)
		}
		if row.DVFSPerformance <= 0 {
			t.Errorf("cell %s: no dvfs performance", row.Key)
		}
		if row.MeanIPC != 0 || row.BaselineIPC != 0 {
			t.Errorf("cell %s: scheduled cell ran the fixed-mode Monte Carlo", row.Key)
		}
		if row.ExpectedCapacity <= 0 || row.Voltage <= 0 {
			t.Errorf("cell %s: shared analytics missing", row.Key)
		}
		byPolicy[row.Policy] = row
	}
	high, low := byPolicy["static-high"], byPolicy["static-low"]
	if high.DVFSPerformance <= low.DVFSPerformance {
		t.Errorf("static-high performance %v not above static-low %v", high.DVFSPerformance, low.DVFSPerformance)
	}
	if high.DVFSEnergyPerInst <= low.DVFSEnergyPerInst {
		t.Errorf("static-high energy %v not above static-low %v", high.DVFSEnergyPerInst, low.DVFSEnergyPerInst)
	}

	// Scheduled rows round-trip through the checkpoint readers.
	rows, err := ReadRows(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Policy == "" {
		t.Fatalf("checkpoint round-trip lost the policy axis: %+v", rows)
	}
}

// TestScheduledCellsRespectGeometry pins the fix for the policy axis
// ignoring the geometry axis: the same policy over two L1 geometries
// must produce different scheduled measurements (a shrunken cache
// changes every phase's cycle count), and the summary must carry a
// policy axis with the dvfs means instead of folding the scheduled
// rows' zero IPC degradation into the classic marginals.
func TestScheduledCellsRespectGeometry(t *testing.T) {
	spec := Spec{
		Pfails:       []float64{0.001},
		Geometries:   []geom.Geometry{geom.MustNew(32*1024, 8, 64), geom.MustNew(8*1024, 4, 64)},
		Schemes:      []sim.Scheme{sim.BlockDisable},
		Policies:     []dvfs.PolicyKind{dvfs.PolicyStaticHigh},
		Instructions: 6000,
		BaseSeed:     3,
	}
	res, err := Run(spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("computed %d rows, want 2", len(res.Rows))
	}
	if res.Rows[0].DVFSPerformance == res.Rows[1].DVFSPerformance {
		t.Fatalf("both geometries report dvfs performance %v — the geometry axis is being ignored",
			res.Rows[0].DVFSPerformance)
	}
	var policyGroups int
	for _, g := range Summarize(res.Rows) {
		if g.Axis == "policy" {
			policyGroups++
			if g.MeanDVFSPerformance <= 0 {
				t.Errorf("policy summary %q has no dvfs performance mean", g.Value)
			}
		}
		if g.Axis != "policy" && g.Cells != 0 {
			t.Errorf("scheduled-only sweep produced classic %s summary with %d cells", g.Axis, g.Cells)
		}
	}
	if policyGroups != 1 {
		t.Fatalf("summary has %d policy groups, want 1", policyGroups)
	}
}

// TestScheduledCellsCollapseGranularity pins that scheduled cells are
// enumerated once per (pfail, geometry, scheme, victim) regardless of
// the granularity axis: granularity only feeds the analytic capacity,
// which scheduled runs do not consume, so repeating them would triple
// the grid's most expensive cells for seed noise.
func TestScheduledCellsCollapseGranularity(t *testing.T) {
	spec := Spec{
		Granularities: []prob.Granularity{prob.GranularityBlock, prob.GranularitySet, prob.GranularityWay},
		Policies:      []dvfs.PolicyKind{dvfs.PolicyNone, dvfs.PolicyOracle},
	}.withDefaults()
	var classic, scheduled int
	for _, c := range spec.Cells() {
		if c.Policy == dvfs.PolicyNone {
			classic++
		} else {
			scheduled++
		}
	}
	if classic != 3 || scheduled != 1 {
		t.Fatalf("3 granularities × (none, oracle) enumerated %d classic + %d scheduled cells, want 3 + 1",
			classic, scheduled)
	}
}

// TestScheduledRowsKeepZeroSwitches pins that a static policy's zero
// switch count survives JSON encoding (the field is a pointer exactly
// so omitempty cannot eat a real zero).
func TestScheduledRowsKeepZeroSwitches(t *testing.T) {
	spec := Spec{
		Schemes:      []sim.Scheme{sim.BlockDisable},
		Policies:     []dvfs.PolicyKind{dvfs.PolicyStaticHigh},
		Instructions: 6000,
		BaseSeed:     3,
	}
	var buf bytes.Buffer
	if _, err := Run(spec, RunOptions{Out: &buf}); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	if !strings.Contains(line, `"dvfs_switches":0`) || !strings.Contains(line, `"dvfs_low_share":0`) {
		t.Fatalf("static-high row dropped its zero switch/low-share fields: %s", line)
	}
}

// TestResumeRefusesForeignGrid pins the stale-spec guard: a checkpoint
// whose rows sit at different grid indices under the resuming spec
// (here because a policy value was added, shifting classic cells) must
// be refused, not silently stitched into a file with colliding indices.
func TestResumeRefusesForeignGrid(t *testing.T) {
	classic := Spec{
		Pfails:       []float64{0.001, 0.002},
		Schemes:      []sim.Scheme{sim.Baseline},
		Instructions: 2000,
		BaseSeed:     3,
	}
	var out bytes.Buffer
	if _, err := Run(classic, RunOptions{Out: &out}); err != nil {
		t.Fatal(err)
	}

	extended := classic
	extended.Policies = []dvfs.PolicyKind{dvfs.PolicyNone, dvfs.PolicyStaticHigh}
	if _, err := Resume(extended, bytes.NewReader(out.Bytes()), RunOptions{}); err == nil {
		t.Fatal("resume accepted a checkpoint written by a different grid")
	}

	foreign := classic
	foreign.Pfails = []float64{0.005}
	if _, err := Resume(foreign, bytes.NewReader(out.Bytes()), RunOptions{}); err == nil {
		t.Fatal("resume accepted a checkpoint with cells outside the spec's grid")
	}

	// The same spec still resumes cleanly.
	res, err := Resume(classic, bytes.NewReader(out.Bytes()), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != 2 || res.Computed != 0 {
		t.Fatalf("same-spec resume skipped %d computed %d, want 2 and 0", res.Skipped, res.Computed)
	}
}

func TestScheduledSpecRejectsUnknownWorkload(t *testing.T) {
	spec := Spec{
		Policies:      []dvfs.PolicyKind{dvfs.PolicyStaticHigh},
		DVFSWorkloads: []string{"nope"},
	}.withDefaults()
	if err := spec.Check(); err == nil {
		t.Fatal("unknown DVFS workload accepted")
	}
}

package sweep

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"vccmin/internal/geom"
	"vccmin/internal/prob"
	"vccmin/internal/sim"
)

// testSpec is a small but multi-axis grid that runs in well under a second
// per cell: 2 pfails × 2 schemes × 2 granularities = 8 cells.
func testSpec() Spec {
	return Spec{
		Pfails:        []float64{1e-4, 1e-3},
		Geometries:    []geom.Geometry{geom.MustNew(8*1024, 4, 64)},
		Schemes:       []sim.Scheme{sim.BlockDisable, sim.WordDisable},
		Granularities: []prob.Granularity{prob.GranularityBlock, prob.GranularityWay},
		Benchmarks:    []string{"gzip"},
		Trials:        2,
		Instructions:  4_000,
		BaseSeed:      7,
	}
}

// rowsByKey maps a JSONL stream to per-cell raw lines.
func rowsByKey(t *testing.T, out []byte) map[string]string {
	t.Helper()
	m := map[string]string{}
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if line == "" {
			continue
		}
		var row Row
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("bad row %q: %v", line, err)
		}
		if _, dup := m[row.Key]; dup {
			t.Fatalf("duplicate key %s", row.Key)
		}
		m[row.Key] = line
	}
	return m
}

func TestShardDeterminism(t *testing.T) {
	// The full unsharded sweep and the union of all four shards must
	// produce byte-identical rows for every cell.
	var full bytes.Buffer
	fres, err := Run(testSpec(), RunOptions{Out: &full})
	if err != nil {
		t.Fatal(err)
	}
	if fres.Computed != 8 || fres.TotalCells != 8 {
		t.Fatalf("computed %d of %d cells, want 8 of 8", fres.Computed, fres.TotalCells)
	}
	fullRows := rowsByKey(t, full.Bytes())

	shardRows := map[string]string{}
	shardTotal := 0
	for shard := 0; shard < 4; shard++ {
		spec := testSpec()
		spec.ShardIndex, spec.ShardCount = shard, 4
		var buf bytes.Buffer
		res, err := Run(spec, RunOptions{Out: &buf})
		if err != nil {
			t.Fatal(err)
		}
		shardTotal += res.Computed
		for k, line := range rowsByKey(t, buf.Bytes()) {
			if _, dup := shardRows[k]; dup {
				t.Fatalf("cell %s computed by two shards", k)
			}
			shardRows[k] = line
		}
	}
	if shardTotal != len(fullRows) {
		t.Fatalf("shards computed %d cells, full sweep %d", shardTotal, len(fullRows))
	}
	for k, want := range fullRows {
		got, ok := shardRows[k]
		if !ok {
			t.Fatalf("cell %s missing from sharded run", k)
		}
		if got != want {
			t.Errorf("cell %s differs between shard layouts:\n sharded: %s\n    full: %s", k, got, want)
		}
	}
}

func TestResumeSkipsCompletedCells(t *testing.T) {
	spec := testSpec()
	var first bytes.Buffer
	if _, err := Run(spec, RunOptions{Out: &first}); err != nil {
		t.Fatal(err)
	}

	// Truncate the output after 3 rows — plus half of row 4, as a run
	// killed mid-write leaves — to fake an interrupted run.
	lines := strings.SplitAfter(first.String(), "\n")
	partial := strings.Join(lines[:3], "")
	torn := partial + lines[3][:len(lines[3])/2]
	done, valid, err := LoadCompleted(strings.NewReader(torn))
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 3 {
		t.Fatalf("loaded %d completed cells, want 3", len(done))
	}
	if valid != int64(len(partial)) {
		t.Fatalf("valid prefix %d bytes, want %d (torn line excluded)", valid, len(partial))
	}

	var rest bytes.Buffer
	res, err := Run(spec, RunOptions{Out: &rest, Completed: done})
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != 3 || res.Computed != 5 {
		t.Fatalf("resume computed %d, skipped %d; want 5 and 3", res.Computed, res.Skipped)
	}
	// Completed cells must not be recomputed, and the union must equal
	// the uninterrupted run byte-for-byte.
	combined := rowsByKey(t, []byte(partial+rest.String()))
	for k, want := range rowsByKey(t, first.Bytes()) {
		if combined[k] != want {
			t.Errorf("cell %s differs after resume", k)
		}
	}

	// Resuming from the complete output recomputes nothing.
	all, _, err := LoadCompleted(strings.NewReader(first.String()))
	if err != nil {
		t.Fatal(err)
	}
	res, err = Run(spec, RunOptions{Completed: all})
	if err != nil {
		t.Fatal(err)
	}
	if res.Computed != 0 || res.Skipped != 8 {
		t.Fatalf("full resume computed %d, skipped %d; want 0 and 8", res.Computed, res.Skipped)
	}
}

func TestLoadCompletedRejectsCorruptCompleteLine(t *testing.T) {
	if _, _, err := LoadCompleted(strings.NewReader("not json\n")); err == nil {
		t.Error("accepted a corrupt newline-terminated line")
	}
}

// TestLoadCompletedRejectsForeignStream: a checkpoint written by a
// different (or pre-versioning) RNG stream must refuse to resume rather
// than silently stitch two distributions into one output file.
func TestLoadCompletedRejectsForeignStream(t *testing.T) {
	rows := []string{
		`{"key":"a","index":0}`,                     // pre-versioning row: no stream field
		`{"key":"b","index":1,"stream":"dense-v0"}`, // explicit foreign stream
	}
	for _, row := range rows {
		if _, _, err := LoadCompleted(strings.NewReader(row + "\n")); err == nil {
			t.Errorf("resumed a checkpoint row from a foreign stream: %s", row)
		}
	}
	ok := `{"key":"c","index":2,"stream":"` + StreamVersion + `"}`
	done, _, err := LoadCompleted(strings.NewReader(ok + "\n"))
	if err != nil || len(done) != 1 {
		t.Fatalf("current-stream row rejected: %v (%d keys)", err, len(done))
	}
}

func TestTrialsReportEffectiveSampleSize(t *testing.T) {
	spec := testSpec()
	spec.Schemes = []sim.Scheme{sim.Baseline, sim.WordDisable}
	spec.Pfails = []float64{1e-3}
	spec.Granularities = []prob.Granularity{prob.GranularityBlock}
	spec.Trials = 4
	res, err := Run(spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		switch r.Scheme {
		case "baseline":
			// Fault-independent and no fitness statistic: one trial.
			if r.Trials != 1 {
				t.Errorf("baseline cell reports %d trials, want 1", r.Trials)
			}
		case "word-disable":
			// IPC needs one run, but UnfitTrials samples all 4 pairs.
			if r.Trials != 4 {
				t.Errorf("word-disable cell reports %d trials, want 4", r.Trials)
			}
		}
	}
}

func TestCellEnumerationAndKeys(t *testing.T) {
	spec := testSpec().withDefaults()
	cells := spec.Cells()
	if len(cells) != 8 {
		t.Fatalf("got %d cells, want 8", len(cells))
	}
	keys := map[string]bool{}
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d has index %d", i, c.Index)
		}
		if keys[c.Key()] {
			t.Errorf("duplicate key %s", c.Key())
		}
		keys[c.Key()] = true
	}
	want := "pfail=0.0001;geom=8192x4x64;scheme=block-disable;victim=no-victim;gran=block"
	if got := cells[0].Key(); got != want {
		t.Errorf("canonical key changed:\n got %s\nwant %s", got, want)
	}
}

func TestShardValidation(t *testing.T) {
	spec := testSpec()
	spec.ShardIndex, spec.ShardCount = 4, 4
	if _, err := Run(spec, RunOptions{}); err == nil {
		t.Error("accepted out-of-range shard index")
	}
	spec = testSpec()
	spec.Pfails = []float64{2}
	if _, err := Run(spec, RunOptions{}); err == nil {
		t.Error("accepted pfail >= 1")
	}
}

func TestSummarizeGroupsEveryAxis(t *testing.T) {
	spec := testSpec()
	res, err := Run(spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	byAxis := map[string]int{}
	for _, s := range res.Summary {
		byAxis[s.Axis] += s.Cells
		if s.Cells == 0 {
			t.Errorf("empty summary group %s=%s", s.Axis, s.Value)
		}
	}
	for _, axis := range []string{"pfail", "geometry", "scheme", "victim", "granularity"} {
		if byAxis[axis] != 8 {
			t.Errorf("axis %s covers %d cells, want 8", axis, byAxis[axis])
		}
	}
	// Block-disable rows must report degradation against a baseline.
	for _, r := range res.Rows {
		if r.BaselineIPC <= 0 {
			t.Errorf("cell %s has no baseline IPC", r.Key)
		}
		if r.Scheme == "block-disable" && r.MeasuredCapacity <= 0 {
			t.Errorf("cell %s has no measured capacity", r.Key)
		}
	}
}

package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// The parallel-executor contract: worker count changes scheduling and
// nothing else. Byte-identical in-order output, checkpoint/resume
// equivalence and clean cancellation must hold at every Workers setting —
// these tests run under -race in CI.

// runWithWorkers runs the test spec with a given per-run worker bound.
func runWithWorkers(t *testing.T, spec Spec, workers int) ([]byte, *Result) {
	t.Helper()
	var buf bytes.Buffer
	res, err := Run(spec, RunOptions{Out: &buf, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res
}

// TestWorkersByteIdentical: serial and saturated pools produce the same
// byte stream, and RunOptions.Workers overrides Spec.Workers.
func TestWorkersByteIdentical(t *testing.T) {
	spec := testSpec()
	spec.Workers = 1
	serial, sres := runWithWorkers(t, spec, 0) // falls back to Spec.Workers = 1
	if sres.Computed != 8 {
		t.Fatalf("serial run computed %d cells, want 8", sres.Computed)
	}
	for _, workers := range []int{2, 8, 16} {
		parallel, _ := runWithWorkers(t, spec, workers) // overrides Spec.Workers
		if !bytes.Equal(serial, parallel) {
			t.Fatalf("workers=%d stream differs from serial stream", workers)
		}
	}
}

// TestParallelOutputInCellOrder: with a saturated pool, flushed rows
// still appear in strictly increasing cell-index order.
func TestParallelOutputInCellOrder(t *testing.T) {
	spec := testSpec()
	out, _ := runWithWorkers(t, spec, 8)
	lastIndex := -1
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		var row Row
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("bad row %q: %v", line, err)
		}
		if row.Index <= lastIndex {
			t.Fatalf("row index %d not after %d: parallel flush broke cell order", row.Index, lastIndex)
		}
		lastIndex = row.Index
	}
}

// TestResumeEquivalenceSerialVsParallel: a checkpoint written serially
// resumes identically under a saturated pool, and vice versa — the
// stitched streams match the uninterrupted serial run byte for byte.
func TestResumeEquivalenceSerialVsParallel(t *testing.T) {
	spec := testSpec()
	full, _ := runWithWorkers(t, spec, 1)
	lines := bytes.SplitAfter(full, []byte("\n"))
	prefix := bytes.Join(lines[:3], nil)

	for _, workers := range []int{1, 8} {
		done, _, err := LoadCompleted(bytes.NewReader(prefix))
		if err != nil {
			t.Fatal(err)
		}
		var rest bytes.Buffer
		res, err := Run(spec, RunOptions{Out: &rest, Completed: done, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if res.Skipped != 3 || res.Computed != 5 {
			t.Fatalf("workers=%d: resume computed %d skipped %d, want 5 and 3", workers, res.Computed, res.Skipped)
		}
		stitched := append(append([]byte{}, prefix...), rest.Bytes()...)
		if !bytes.Equal(stitched, full) {
			t.Fatalf("workers=%d: stitched resume stream differs from serial full run", workers)
		}
	}
}

// TestCancellationMidPool: cancelling the context after the first flushed
// row aborts the run with the context's error while the already-flushed
// output remains a valid in-order checkpoint that a fresh run can resume
// to the exact full stream.
func TestCancellationMidPool(t *testing.T) {
	spec := testSpec()
	full, _ := runWithWorkers(t, spec, 1)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out bytes.Buffer
	_, err := Run(spec, RunOptions{
		Out:     &out,
		Workers: 2,
		Context: ctx,
		OnProgress: func(p Progress) {
			if p.Flushed >= 1 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}

	// The flushed prefix must be a parseable in-order prefix of the full
	// stream with at least the row that triggered cancellation.
	done, valid, err := LoadCompleted(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("cancelled checkpoint unreadable: %v", err)
	}
	if len(done) == 0 {
		t.Fatal("cancelled run flushed no rows before aborting")
	}
	if int64(out.Len()) != valid {
		t.Fatalf("cancelled checkpoint has %d bytes, %d valid: torn tail in flushed output", out.Len(), valid)
	}
	if !bytes.HasPrefix(full, out.Bytes()) {
		t.Fatal("cancelled output is not a prefix of the full stream")
	}

	// Resuming the checkpoint completes to the byte-identical full run.
	var rest bytes.Buffer
	res, err := Run(spec, RunOptions{Out: &rest, Completed: done, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != len(done) || res.Computed != 8-len(done) {
		t.Fatalf("resume after cancel computed %d skipped %d, want %d and %d",
			res.Computed, res.Skipped, 8-len(done), len(done))
	}
	stitched := append(append([]byte{}, out.Bytes()...), rest.Bytes()...)
	if !bytes.Equal(stitched, full) {
		t.Fatal("resume after cancellation diverges from the uninterrupted stream")
	}
}

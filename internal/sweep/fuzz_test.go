package sweep

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// Fuzzing targets the two checkpoint readers: whatever bytes a killed,
// interleaved or corrupted run leaves behind, ReadRows and LoadCompleted
// must never panic, and LoadCompleted's valid-prefix contract must hold —
// truncating a file to the reported prefix and re-reading it yields the
// same completed-cell set and consumes every byte.

// fuzzRowLine renders a well-formed checkpoint line for seeding.
func fuzzRowLine(key string, index int) string {
	b, _ := json.Marshal(Row{Key: key, Index: index, Stream: StreamVersion, Pfail: 0.001, Scheme: "block-disable"})
	return string(b) + "\n"
}

func fuzzSeeds(f *testing.F) {
	valid := fuzzRowLine("pfail=0.001;geom=32768x8x64;scheme=block-disable;victim=no-victim;gran=block", 0)
	second := fuzzRowLine("pfail=0.002;geom=32768x8x64;scheme=baseline;victim=no-victim;gran=block", 1)
	f.Add([]byte(""))
	f.Add([]byte(valid))
	f.Add([]byte(valid + second))
	f.Add([]byte(valid + second[:len(second)/2]))                      // torn tail
	f.Add([]byte(valid + "\n\n" + second))                             // blank lines
	f.Add([]byte(valid + valid))                                       // duplicate cells
	f.Add([]byte(valid + "{\"key\": garbage}\n"))                      // complete corrupt line
	f.Add([]byte("not json at all\n" + valid))                         // interleaved garbage first
	f.Add([]byte(strings.Repeat(" ", 300) + "\n"))                     // whitespace-only line
	f.Add([]byte("{\"key\":\"" + strings.Repeat("k", 2000) + "\"}\n")) // long key
	f.Add([]byte("\xff\xfe\x00 binary junk \n" + valid))
}

func FuzzLoadCompleted(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		done, valid, err := LoadCompleted(bytes.NewReader(data))
		if err != nil {
			return
		}
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [0,%d]", valid, len(data))
		}
		// The declared prefix must end on a line boundary (or be empty).
		if valid > 0 && data[valid-1] != '\n' {
			t.Fatalf("valid prefix %d does not end at a newline", valid)
		}
		// Re-reading the truncated prefix must be stable: same set, every
		// byte consumed, no error. This is exactly what resume relies on
		// after truncating a torn file.
		done2, valid2, err2 := LoadCompleted(bytes.NewReader(data[:valid]))
		if err2 != nil {
			t.Fatalf("valid prefix failed to re-parse: %v", err2)
		}
		if valid2 != valid {
			t.Fatalf("prefix re-read shrank: %d -> %d", valid, valid2)
		}
		if len(done2) != len(done) {
			t.Fatalf("completed set changed on re-read: %d -> %d keys", len(done), len(done2))
		}
		for k := range done {
			if _, ok := done2[k]; !ok {
				t.Fatalf("key %q lost on re-read", k)
			}
		}
		// Every complete line in the prefix parsed, so ReadRows must agree
		// (its scanner caps lines at 1 MiB; stay under it).
		if int64(len(data)) < 1<<20 {
			rows, err := ReadRows(bytes.NewReader(data[:valid]))
			if err != nil {
				t.Fatalf("ReadRows rejected LoadCompleted's valid prefix: %v", err)
			}
			if len(rows) < len(done) {
				t.Fatalf("%d rows but %d distinct keys", len(rows), len(done))
			}
		}
	})
}

func FuzzReadRows(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		rows, err := ReadRows(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Parsed rows must survive a marshal/parse round trip unchanged —
		// the property the golden corpus and the resume path both lean on.
		var buf bytes.Buffer
		for _, r := range rows {
			b, err := json.Marshal(r)
			if err != nil {
				t.Fatalf("row failed to re-marshal: %v", err)
			}
			buf.Write(b)
			buf.WriteByte('\n')
		}
		back, err := ReadRows(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(back) != len(rows) {
			t.Fatalf("round trip changed row count: %d -> %d", len(rows), len(back))
		}
		for i := range rows {
			if back[i] != rows[i] {
				t.Fatalf("row %d changed in round trip:\n%+v\n%+v", i, rows[i], back[i])
			}
		}
	})
}

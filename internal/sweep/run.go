package sweep

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
)

// RunOptions configures a sweep execution.
type RunOptions struct {
	// Out receives the computed rows as JSON lines, flushed in cell order
	// as soon as every earlier owned cell has completed — so a killed run
	// leaves a valid resumable prefix. Nil discards the stream.
	Out io.Writer

	// Completed holds cell keys to skip (resume). Build it from a partial
	// output file with LoadCompleted.
	Completed map[string]struct{}

	// Context cancels the run between cells: already-flushed rows remain a
	// valid checkpoint and Run returns the context's error. Nil means
	// context.Background() (never cancelled).
	Context context.Context

	// OnProgress, if set, observes the run after each flushed row. It is
	// called synchronously under the flush lock — it must be fast and must
	// not call back into the run.
	OnProgress func(Progress)

	// Workers bounds concurrent cell evaluations for this execution,
	// overriding Spec.Workers when positive. Zero falls back to the
	// spec's knob (itself defaulting to GOMAXPROCS). Worker count only
	// changes scheduling: rows stream in cell order and their bytes are
	// identical at every setting.
	Workers int
}

// Progress is a point-in-time view of a run, reported to
// RunOptions.OnProgress after every flushed row.
type Progress struct {
	TotalCells int // full grid size
	ShardCells int // cells owned by this run's shard
	Skipped    int // owned cells skipped up front (resume)
	Flushed    int // rows computed and written so far
}

// Result summarizes one sweep execution (one shard's view).
type Result struct {
	Spec       Spec
	Rows       []Row // rows computed by this run, in cell order
	TotalCells int   // full grid size
	ShardCells int   // cells owned by this shard
	Computed   int
	Skipped    int // owned cells skipped because already completed
	Summary    []AxisSummary

	// Resume bookkeeping, set only by Resume/ResumeFile: how many bytes of
	// the prior checkpoint were a valid row prefix, and how many trailing
	// bytes (a line torn by a kill mid-write) were dropped.
	ResumeValidBytes int64
	ResumeTornBytes  int64
}

// Run evaluates the spec's grid cells owned by its shard, skipping cells
// already in opt.Completed, with opt.Workers (or Spec.Workers) concurrent
// evaluations. Rows stream to opt.Out in cell order. The first cell error
// aborts the run (already-flushed rows remain valid for resume).
func Run(spec Spec, opt RunOptions) (*Result, error) {
	spec = spec.withDefaults()
	if err := spec.Check(); err != nil {
		return nil, err
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = spec.Workers
	}
	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}

	all := spec.Cells()
	res := &Result{Spec: spec, TotalCells: len(all)}
	var todo []Cell
	for _, c := range all {
		if !spec.owns(c) {
			continue
		}
		res.ShardCells++
		if _, done := opt.Completed[c.Key()]; done {
			res.Skipped++
			continue
		}
		todo = append(todo, c)
	}

	rows := make([]*Row, len(todo))
	var (
		failed   atomic.Bool
		firstErr error
		errOnce  sync.Once
		wg       sync.WaitGroup
		sem      = make(chan struct{}, workers)

		mu      sync.Mutex
		next    int // first not-yet-flushed slot
		flushed []Row
	)
	out := opt.Out
	var bw *bufio.Writer
	if out != nil {
		bw = bufio.NewWriter(out)
		out = bw
	}

	// flush writes the completed prefix of rows, keeping the output a
	// valid in-order checkpoint at all times.
	flush := func(i int, r *Row) error {
		mu.Lock()
		defer mu.Unlock()
		rows[i] = r
		for next < len(rows) && rows[next] != nil {
			flushed = append(flushed, *rows[next])
			if out != nil {
				b, err := json.Marshal(rows[next])
				if err != nil {
					return err
				}
				if _, err := out.Write(append(b, '\n')); err != nil {
					return err
				}
				if err := bw.Flush(); err != nil {
					return err
				}
			}
			next++
			if opt.OnProgress != nil {
				opt.OnProgress(Progress{
					TotalCells: res.TotalCells,
					ShardCells: res.ShardCells,
					Skipped:    res.Skipped,
					Flushed:    next,
				})
			}
			// A cancellation must abort even when every cell already
			// slipped past the pre-evaluation check (tiny grids): stop
			// between rows, leaving the flushed prefix a valid checkpoint.
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		return nil
	}

	for i, c := range todo {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, c Cell) {
			defer wg.Done()
			defer func() { <-sem }()
			if failed.Load() {
				return
			}
			if err := ctx.Err(); err != nil {
				errOnce.Do(func() { firstErr = err; failed.Store(true) })
				return
			}
			row, err := spec.evaluate(c)
			if err == nil {
				err = flush(i, &row)
			}
			if err != nil {
				errOnce.Do(func() { firstErr = err; failed.Store(true) })
			}
		}(i, c)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	res.Rows = flushed
	res.Computed = len(flushed)
	res.Summary = Summarize(flushed)
	return res, nil
}

// ReadRows parses a JSON-lines result stream. Blank (all-whitespace)
// lines are ignored, exactly as LoadCompleted ignores them, so the two
// readers always agree on what a checkpoint contains.
func ReadRows(r io.Reader) ([]Row, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var rows []Row
	for ln := 1; sc.Scan(); ln++ {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var row Row
		if err := json.Unmarshal(line, &row); err != nil {
			return nil, fmt.Errorf("sweep: line %d: %w", ln, err)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rows, nil
}

// LoadCompleted reads a partial result stream and returns the set of cell
// keys it contains plus the byte length of the valid prefix. A final line
// without a newline (a run killed mid-write) is tolerated and excluded
// from both; callers appending to the file should first truncate it to
// valid. A complete line that fails to parse is real corruption and an
// error.
func LoadCompleted(r io.Reader) (done map[string]struct{}, valid int64, err error) {
	indexed, valid, err := loadCompletedIndexed(r)
	if err != nil {
		return nil, 0, err
	}
	done = make(map[string]struct{}, len(indexed))
	for k := range indexed {
		done[k] = struct{}{}
	}
	return done, valid, nil
}

// loadCompletedIndexed is LoadCompleted keeping each row's grid index,
// so the resume path can verify the checkpoint against the spec's grid.
func loadCompletedIndexed(r io.Reader) (done map[string]int, valid int64, err error) {
	br := bufio.NewReader(r)
	done = map[string]int{}
	for ln := 1; ; ln++ {
		line, err := br.ReadBytes('\n')
		if err == io.EOF {
			// No trailing newline: a checkpoint interrupted mid-write.
			return done, valid, nil
		}
		if err != nil {
			return nil, 0, err
		}
		if trimmed := bytes.TrimSpace(line); len(trimmed) > 0 {
			var row Row
			if err := json.Unmarshal(trimmed, &row); err != nil {
				return nil, 0, fmt.Errorf("sweep: line %d: %w", ln, err)
			}
			// Refuse to resume a checkpoint written by an incompatible
			// random-stream family: completing it would silently mix rows
			// from two distributions in one output file. Rerun instead.
			if row.Stream != StreamVersion {
				return nil, 0, fmt.Errorf("sweep: line %d: checkpoint stream %q incompatible with engine stream %q — delete the checkpoint and rerun",
					ln, row.Stream, StreamVersion)
			}
			done[row.Key] = row.Index
		}
		valid += int64(len(line))
	}
}

// checkAgainstGrid verifies that every checkpoint row belongs to the
// spec's grid at the recorded index. A key the grid does not contain, or
// a key whose grid position moved (the spec's axes changed — e.g. a
// policy or pfail value was added), means the checkpoint was written by
// a different spec: completing it would stitch rows with colliding,
// non-monotonic indices into one file. Refuse, like a stream mismatch.
func checkAgainstGrid(spec Spec, done map[string]int) (map[string]struct{}, error) {
	grid := make(map[string]int)
	for _, c := range spec.Cells() {
		grid[c.Key()] = c.Index
	}
	set := make(map[string]struct{}, len(done))
	for key, idx := range done {
		want, ok := grid[key]
		if !ok {
			return nil, fmt.Errorf("sweep: checkpoint cell %q is not in this spec's grid — the checkpoint was written by a different spec; rerun instead of resuming", key)
		}
		if want != idx {
			return nil, fmt.Errorf("sweep: checkpoint cell %q has grid index %d but this spec puts it at %d — the checkpoint was written by a different spec; rerun instead of resuming", key, idx, want)
		}
		set[key] = struct{}{}
	}
	return set, nil
}

// Resume is Run skipping the cells already present in the prior output
// stream read from prev. The result's ResumeValidBytes and
// ResumeTornBytes report how much of the checkpoint was a usable row
// prefix and how many trailing bytes of a line torn by a kill mid-write
// were excluded, so callers can log what was lost. Resume only reads
// prev: a caller appending the new rows to the same file must first
// truncate it to ResumeValidBytes (a torn tail left in place would fuse
// with the first appended row into an unparseable line) — or use
// ResumeFile, which does both. Any Completed set already in opt is
// extended.
func Resume(spec Spec, prev io.Reader, opt RunOptions) (*Result, error) {
	cr := &countingReader{r: prev}
	indexed, valid, err := loadCompletedIndexed(cr)
	if err != nil {
		return nil, err
	}
	done, err := checkAgainstGrid(spec.withDefaults(), indexed)
	if err != nil {
		return nil, err
	}
	if opt.Completed == nil {
		opt.Completed = done
	} else {
		for k := range done {
			opt.Completed[k] = struct{}{}
		}
	}
	res, err := Run(spec, opt)
	if res != nil {
		res.ResumeValidBytes = valid
		res.ResumeTornBytes = cr.n - valid
	}
	return res, err
}

// ResumeFile is Resume checkpointing through a file: cells already
// recorded in path are skipped, a final line torn by a kill mid-write is
// truncated away, and new rows append in cell order on the valid prefix's
// boundary. The file is created if missing. opt.Out and opt.Completed are
// owned by ResumeFile and must be zero.
func ResumeFile(spec Spec, path string, opt RunOptions) (*Result, error) {
	if opt.Out != nil || opt.Completed != nil {
		return nil, fmt.Errorf("sweep: ResumeFile owns Out and Completed")
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cr := &countingReader{r: f}
	indexed, valid, err := loadCompletedIndexed(cr)
	if err != nil {
		return nil, fmt.Errorf("sweep: loading %s: %w", path, err)
	}
	done, err := checkAgainstGrid(spec.withDefaults(), indexed)
	if err != nil {
		return nil, fmt.Errorf("sweep: loading %s: %w", path, err)
	}
	if err := f.Truncate(valid); err != nil {
		return nil, err
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		return nil, err
	}
	opt.Out = f
	opt.Completed = done
	res, err := Run(spec, opt)
	if res != nil {
		res.ResumeValidBytes = valid
		res.ResumeTornBytes = cr.n - valid
	}
	if err != nil {
		return res, err
	}
	return res, f.Sync()
}

// countingReader counts bytes consumed, so Resume can size the torn tail
// (total read minus valid prefix) without a second pass.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func itoa(n int) string { return strconv.Itoa(n) }

func wrapCellErr(key string, err error) error {
	return fmt.Errorf("sweep: cell %s: %w", key, err)
}

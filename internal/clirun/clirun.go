// Package clirun holds the scaffolding the seven CLIs share so each
// main stays a thin adapter over the engine task layer: the -version
// flag, engine construction with an optional persistent result cache,
// and JSON emission of engine result bytes.
//
// The result cache is the same content-addressed store vccmin-serve
// keeps under its data directory: pointing a CLI's -result-cache at a
// directory makes repeated invocations (and anything else sharing the
// directory) replay stored bytes instead of recomputing.
package clirun

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"vccmin/internal/buildinfo"
	"vccmin/internal/engine"
)

// VersionFlag registers the standard -version flag.
func VersionFlag() *bool {
	return flag.Bool("version", false, "print the build version and exit")
}

// HandleVersion prints the build line and reports whether the caller
// should exit (the flag was set).
func HandleVersion(set *bool) bool {
	if set == nil || !*set {
		return false
	}
	fmt.Println(buildinfo.String())
	return true
}

// ResultCacheFlag registers the standard -result-cache flag.
func ResultCacheFlag() *string {
	return flag.String("result-cache", "",
		"content-addressed result store directory (reused across runs; empty = in-memory only)")
}

// NewEngine builds the CLI's engine: in-memory only when cacheDir is
// empty, fronting the persistent store there otherwise.
func NewEngine(cacheDir string) (*engine.Engine, error) {
	return engine.New(engine.Options{Dir: cacheDir})
}

// RunTask executes one task through the engine and reports the serving
// tier on stderr when the result was replayed rather than computed.
func RunTask(eng *engine.Engine, name string, t engine.Task) (engine.Result, error) {
	res, err := eng.Do(context.Background(), t)
	if err != nil {
		return res, err
	}
	if res.Source != engine.SourceCompute {
		fmt.Fprintf(os.Stderr, "%s: %s/%s served from result cache (%s)\n",
			name, t.Kind(), t.CanonicalHash(), res.Source)
	}
	return res, nil
}

// EmitJSON writes engine result bytes as a newline-terminated JSON
// document, indented when pretty is set. Indentation only reshapes
// whitespace: the compact form is byte-identical to what the server
// stores and serves for the same task.
func EmitJSON(w io.Writer, b []byte, pretty bool) error {
	if pretty {
		var buf bytes.Buffer
		if err := json.Indent(&buf, b, "", "  "); err != nil {
			return err
		}
		b = buf.Bytes()
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	_, err := w.Write([]byte{'\n'})
	return err
}

// WriteOutput sends the document to path, or stdout when path is empty.
func WriteOutput(path string, b []byte, pretty bool) error {
	if path == "" {
		return EmitJSON(os.Stdout, b, pretty)
	}
	var buf bytes.Buffer
	if err := EmitJSON(&buf, b, pretty); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// Fatal prints the error under the command's name and exits 1.
func Fatal(name string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
	os.Exit(1)
}

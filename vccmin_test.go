package vccmin

import (
	"math"
	"testing"
)

func TestFacadeAnalysis(t *testing.T) {
	g := ReferenceGeometry()
	if got := MeanFaultyBlocks(g, 275); math.Abs(got-213) > 1 {
		t.Errorf("MeanFaultyBlocks(275) = %v, want ≈213", got)
	}
	if got := ExpectedBlockDisableCapacity(g, 0.001); math.Abs(got-0.58) > 0.01 {
		t.Errorf("capacity = %v, want ≈0.58", got)
	}
	if got := CapacityAtLeast(g, 0.001, 0.5); got < 0.999 {
		t.Errorf("P[cap>=50%%] = %v, want >= 0.999", got)
	}
	dist := BlockDisableCapacityDistribution(g, 0.001)
	if len(dist) != g.Blocks()+1 {
		t.Errorf("distribution has %d entries", len(dist))
	}
	if p := WordDisableWholeCacheFailure(g, 0.001); p < 5e-4 || p > 5e-3 {
		t.Errorf("whole-cache failure = %v, want ≈1e-3", p)
	}
	if c := IncrementalWordDisableCapacity(g, 0); c != 1 {
		t.Errorf("incremental capacity at 0 = %v", c)
	}
}

func TestFacadeGeometryAndTableI(t *testing.T) {
	if _, err := NewGeometry(32*1024, 8, 64); err != nil {
		t.Fatal(err)
	}
	if _, err := NewGeometry(0, 8, 64); err == nil {
		t.Error("accepted invalid geometry")
	}
	rows := TableI()
	if len(rows) != 6 || rows[0].Total != 76800 {
		t.Error("TableI wrong")
	}
}

func TestFacadeFaultsAndSchemes(t *testing.T) {
	g := ReferenceGeometry()
	m := NewFaultMap(g, 0.001, 7)
	if m.Total == 0 {
		t.Fatal("fault map empty")
	}
	d := BuildBlockDisable(m)
	if c := d.CapacityFraction(); c < 0.4 || c > 0.8 {
		t.Errorf("capacity = %v", c)
	}
	if !WordDisableFit(NewFaultMap(g, 0, 1)) {
		t.Error("clean map should fit word-disable")
	}
	pair := NewFaultPair(g, g, 0.001, 9)
	if pair.I.Total == 0 && pair.D.Total == 0 {
		t.Error("pair suspiciously empty")
	}
}

func TestFacadePowerModel(t *testing.T) {
	m := DefaultPowerModel()
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	if m.Pfail(m.VFloor) < 1e-4 {
		t.Error("pfail at floor should be near 1e-3")
	}
}

func TestFacadeSimulation(t *testing.T) {
	g := ReferenceGeometry()
	res, err := RunSim(SimOptions{
		Benchmark:    "gzip",
		Mode:         LowVoltage,
		Scheme:       BlockDisable,
		Victim:       Victim10T,
		Pair:         NewFaultPair(g, g, 0.001, 42),
		Instructions: 30_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 {
		t.Error("zero IPC")
	}
	if len(Benchmarks()) != 26 || len(BenchmarkNames()) != 26 {
		t.Error("benchmark lists wrong")
	}
}

func TestFacadeExperiments(t *testing.T) {
	p := DefaultSimParams()
	p.Benchmarks = []string{"eon"}
	p.FaultPairs = 2
	p.Instructions = 20_000
	lv, err := RunLowVoltage(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(lv.Fig8().Rows) != 1 {
		t.Error("Fig8 rows wrong")
	}
	hv, err := RunHighVoltage(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(hv.Fig11().Rows) != 1 {
		t.Error("Fig11 rows wrong")
	}
}

func TestFacadeExtensions(t *testing.T) {
	g := ReferenceGeometry()
	if !EvaluateBitFix(NewFaultMap(g, 0, 1)).Fit {
		t.Error("clean map should fit bit-fix")
	}
	if p := BitFixWholeCacheFailure(g, 0.001); p < 0.5 {
		t.Errorf("bit-fix failure at pfail=1e-3 = %v, want large", p)
	}
	b := GranularityCapacity(g, GranularityBlock, 0.001)
	s := GranularityCapacity(g, GranularitySet, 0.001)
	w := GranularityCapacity(g, GranularityWay, 0.001)
	if !(b > s && s > w) {
		t.Errorf("granularity ordering violated: %v %v %v", b, s, w)
	}
	m := DefaultPowerModel()
	choice, ok := MostEfficientOperatingPoint(m, 0.3)
	if !ok || choice.Point.Performance < 0.3 {
		t.Errorf("operating point search failed: %+v ok=%v", choice, ok)
	}
}

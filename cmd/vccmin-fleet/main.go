// Command vccmin-fleet sweeps a simulated manufactured fleet: every die
// draws its own failure-probability multiplier from a wafer-level
// lognormal distribution (inter-wafer mean × intra-wafer radial
// gradient × die noise) and bisects its minimum operating voltage under
// each fault-tolerance scheme. The output is the fleet's Vcc-min
// distribution, yield-versus-voltage curve and per-wafer summaries —
// or, with -predict, a data-efficient prediction study that estimates
// each sampled die's Vcc-min from K adaptive pass/fail measurements and
// reports error quantiles against ground truth.
//
// The command is a thin adapter over the engine task layer: it
// constructs the same fleet-sweep (or vccmin-predict) task the server's
// GET/POST /v1/fleet and POST /v1/batch construct, so the emitted
// document is byte-identical (modulo -pretty whitespace) to the
// server's for the same parameters — and with -result-cache pointed at
// a directory, repeated invocations replay the stored bytes instead of
// re-simulating.
//
// Usage:
//
//	vccmin-fleet                                   # 1000-die fleet, JSON to stdout
//	vccmin-fleet -dies 100000 -schemes block,word  # big fleet, two schemes
//	vccmin-fleet -dies 10000 -wafer-sigma 0.4      # wilder inter-wafer variation
//	vccmin-fleet -include-dies -out fleet.json     # keep the per-die rows
//	vccmin-fleet -predict 6 -sample 256            # Vcc-min prediction study, K=6
//	vccmin-fleet -result-cache ~/.cache/vccmin     # persistent cross-run result reuse
//
// Scheme flags take comma-separated values. Workers only changes
// scheduling: results are bit-identical at any -workers value.
// -cpuprofile and -memprofile write runtime/pprof profiles of the run,
// so a speed campaign starts from data instead of guesses.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"vccmin/internal/cliflag"
	"vccmin/internal/clirun"
	"vccmin/internal/tasks"
)

func main() {
	var (
		dies         = flag.Int("dies", 0, "fleet size in dies (0 = default 1000)")
		diesPerWafer = flag.Int("dies-per-wafer", 0, "wafer capacity (0 = default 64)")
		schemes      = flag.String("schemes", "", "schemes to certify each die under, comma list (default block,word)")
		waferSigma   = flag.Float64("wafer-sigma", 0, "lognormal sigma of the per-wafer mean multiplier (0 = default 0.25)")
		gradient     = flag.Float64("gradient", 0, "intra-wafer radial log-multiplier span (0 = default 0.4)")
		dieSigma     = flag.Float64("die-sigma", 0, "lognormal sigma of the per-die noise (0 = default 0.15)")
		floor        = flag.Float64("capacity-floor", 0, "surviving-capacity fraction a capacity scheme must retain (0 = default 0.75)")
		vsteps       = flag.Int("vsteps", 0, "voltage grid points between Vcc-min and the floor (0 = default 33)")
		geometry     = flag.String("geom", "", "cache geometry SIZExWAYSxBLOCK (default 32768x8x64)")
		seed         = flag.Int64("seed", 1, "fleet base seed; every wafer and die stream derives from it")
		includeDies  = flag.Bool("include-dies", false, "include the per-die rows in the output")
		predict      = flag.Int("predict", 0, "run a prediction study with this measurement budget K instead of a fleet sweep")
		sample       = flag.Int("sample", 0, "prediction study: dies sampled across the fleet (0 = default 128)")
		workers      = flag.Int("workers", 0, "fan-out goroutines (0 = GOMAXPROCS); never changes results")
		out          = flag.String("out", "", "output JSON file (empty = stdout)")
		pretty       = flag.Bool("pretty", true, "indent the JSON (false emits the server's exact compact bytes)")
		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile   = flag.String("memprofile", "", "write an allocation profile (post-GC heap) to this file on exit")
		cacheDir     = clirun.ResultCacheFlag()
		version      = clirun.VersionFlag()
	)
	flag.Parse()
	if clirun.HandleVersion(version) {
		return
	}

	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		clirun.Fatal("vccmin-fleet", err)
	}
	defer stopProfiles()

	eng, err := clirun.NewEngine(*cacheDir)
	if err != nil {
		clirun.Fatal("vccmin-fleet", err)
	}

	if *predict > 0 {
		schemeList := cliflag.Split(*schemes)
		req := tasks.PredictRequest{
			Dies:         *dies,
			DiesPerWafer: *diesPerWafer,
			Geometry:     *geometry,
			Seed:         *seed,
			K:            *predict,
			Sample:       *sample,
			Workers:      *workers,
		}
		if len(schemeList) > 1 {
			clirun.Fatal("vccmin-fleet", fmt.Errorf("-predict takes one scheme, got %d", len(schemeList)))
		}
		if len(schemeList) == 1 {
			req.Scheme = schemeList[0]
		}
		setIfNonZero(&req.WaferSigma, *waferSigma)
		setIfNonZero(&req.Gradient, *gradient)
		setIfNonZero(&req.DieSigma, *dieSigma)
		setIfNonZero(&req.CapacityFloor, *floor)
		task, err := tasks.NewPredictTask(req)
		if err != nil {
			clirun.Fatal("vccmin-fleet", err)
		}
		res, err := clirun.RunTask(eng, "vccmin-fleet", task)
		if err != nil {
			clirun.Fatal("vccmin-fleet", err)
		}
		if err := clirun.WriteOutput(*out, res.Bytes, *pretty); err != nil {
			clirun.Fatal("vccmin-fleet", err)
		}
		var resp tasks.PredictResponse
		if err := res.Decode(&resp); err != nil {
			clirun.Fatal("vccmin-fleet", err)
		}
		fmt.Fprintf(os.Stderr, "predict: %d dies sampled, k=%d, mean |err| %.4g V (p99 %.4g, bound %.4g)\n",
			resp.Sample, resp.K, resp.MeanAbsError, resp.P99, resp.BracketBound)
		return
	}

	req := tasks.FleetRequest{
		Dies:         *dies,
		DiesPerWafer: *diesPerWafer,
		Schemes:      cliflag.Split(*schemes),
		VSteps:       *vsteps,
		Geometry:     *geometry,
		Seed:         *seed,
		IncludeDies:  *includeDies,
		Workers:      *workers,
	}
	setIfNonZero(&req.WaferSigma, *waferSigma)
	setIfNonZero(&req.Gradient, *gradient)
	setIfNonZero(&req.DieSigma, *dieSigma)
	setIfNonZero(&req.CapacityFloor, *floor)
	task, err := tasks.NewFleetTask(req)
	if err != nil {
		clirun.Fatal("vccmin-fleet", err)
	}
	res, err := clirun.RunTask(eng, "vccmin-fleet", task)
	if err != nil {
		clirun.Fatal("vccmin-fleet", err)
	}
	if err := clirun.WriteOutput(*out, res.Bytes, *pretty); err != nil {
		clirun.Fatal("vccmin-fleet", err)
	}

	var resp tasks.FleetResponse
	if err := res.Decode(&resp); err != nil {
		clirun.Fatal("vccmin-fleet", err)
	}
	for _, sy := range resp.Schemes {
		fmt.Fprintf(os.Stderr, "fleet: %s: %d/%d dies reach the floor, %d fail at nominal, p99 Vcc-min %.4g V\n",
			sy.Scheme, sy.ReachFloor, resp.Dies, sy.FailedAtNominal, sy.P99)
	}
}

// startProfiles arms -cpuprofile/-memprofile and returns the teardown
// main defers: stop the CPU profile, then snapshot the post-GC heap.
// clirun.Fatal exits without running it, so profiles only land for
// successful runs — the ones worth profiling.
func startProfiles(cpu, mem string) (func(), error) {
	var cpuFile *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
			fmt.Fprintln(os.Stderr, "vccmin-fleet: wrote CPU profile to", cpu)
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "vccmin-fleet: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "vccmin-fleet: memprofile:", err)
				return
			}
			fmt.Fprintln(os.Stderr, "vccmin-fleet: wrote heap profile to", mem)
		}
	}, nil
}

// setIfNonZero materializes an optional float flag: 0 means "take the
// population default" and stays nil in the request.
func setIfNonZero(dst **float64, v float64) {
	if v != 0 {
		val := v
		*dst = &val
	}
}

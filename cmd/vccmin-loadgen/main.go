// Command vccmin-loadgen replays a mixed-traffic workload against the
// vccmin service at a fixed open-loop arrival rate and reports
// per-endpoint latency histograms plus the traffic-hardening outcomes
// (2xx answered, 429 rate-limited, 503 shed). Open loop means arrivals
// never slow down for a struggling server, so saturation — and the
// admission control's response to it — shows up in the numbers instead
// of hiding in client back-pressure.
//
// Point it at a running server, or let it host one in-process:
//
//	vccmin-loadgen -base http://127.0.0.1:8780 -rate 200 -requests 2000
//	vccmin-loadgen -self -rate 300 -requests 1500 -bench-out loadgen.txt
//
// -self starts the full service on a loopback port with a throwaway
// data directory, runs the workload and tears it down — the hermetic
// mode CI uses. -bench-out writes `go test -bench`-format result lines
// that `vccmin-bench -extra` merges into a BENCH_<n>.json snapshot;
// -json writes the full report with histogram buckets.
//
// The endpoint mix defaults to loadgen.DefaultMix (analytics GETs, a
// sim POST, a sweep enqueue, a stats probe); -mix extended adds the
// fleet sweep GET and the columnar query POST, and a
// name=weight[,name=weight...] spec picks and reweights endpoints from
// that extended set, e.g. -mix capacity=8,fleet=2 drops every other
// endpoint and splits traffic 80/20.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"vccmin/internal/clirun"
	"vccmin/internal/loadgen"
	"vccmin/internal/service"
)

func main() {
	var (
		base     = flag.String("base", "", "base URL of a running service (e.g. http://127.0.0.1:8780)")
		self     = flag.Bool("self", false, "host the service in-process on a loopback port with a throwaway data dir")
		rate     = flag.Float64("rate", 100, "open-loop arrival rate, requests/second")
		requests = flag.Int("requests", 1000, "total requests to launch")
		mixSpec  = flag.String("mix", "", "endpoint mix: empty = default, \"extended\" adds fleet+query, or name=weight[,name=weight...] over the extended set (unlisted names drop out)")
		seed     = flag.Int64("seed", 1, "endpoint-pick PRNG seed")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		apiKey   = flag.String("api-key", "", "X-API-Key sent with every request (the rate limiter's client key)")
		jsonOut  = flag.String("json", "", "write the full JSON report (with histogram buckets) to this file")
		benchOut = flag.String("bench-out", "", "write go test -bench format result lines to this file (for vccmin-bench -extra)")
		selfRate = flag.Float64("self-rate-limit", 0, "with -self: per-client rate limit of the hosted service (0 disables)")
		selfShed = flag.Int("self-shed-watermark", 0, "with -self: admission watermark of the hosted service (0 = default)")
		version  = clirun.VersionFlag()
	)
	flag.Parse()
	if clirun.HandleVersion(version) {
		return
	}
	if err := run(*base, *self, *rate, *requests, *mixSpec, *seed, *timeout, *apiKey,
		*jsonOut, *benchOut, *selfRate, *selfShed); err != nil {
		fmt.Fprintln(os.Stderr, "vccmin-loadgen:", err)
		os.Exit(1)
	}
}

func run(base string, self bool, rate float64, requests int, mixSpec string, seed int64,
	timeout time.Duration, apiKey, jsonOut, benchOut string, selfRate float64, selfShed int) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if self == (base != "") {
		return fmt.Errorf("exactly one of -base and -self is required")
	}
	if self {
		url, shutdown, err := startSelf(selfRate, selfShed)
		if err != nil {
			return err
		}
		defer shutdown()
		base = url
		fmt.Fprintln(os.Stderr, "vccmin-loadgen: self-hosted service at", base)
	}

	mix, err := buildMix(mixSpec)
	if err != nil {
		return err
	}
	rep, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL:  base,
		Mix:      mix,
		Rate:     rate,
		Requests: requests,
		Timeout:  timeout,
		Seed:     seed,
		APIKey:   apiKey,
	})
	if err != nil {
		return err
	}
	rep.Summary(os.Stderr)

	if jsonOut != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "wrote", jsonOut)
	}
	if benchOut != "" {
		f, err := os.Create(benchOut)
		if err != nil {
			return err
		}
		if err := rep.WriteBenchFormat(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "wrote", benchOut)
	} else {
		rep.WriteBenchFormat(os.Stdout)
	}
	return nil
}

// buildMix resolves the -mix spec: empty keeps DefaultMix (byte-stable
// request streams for existing snapshots), "extended" takes
// loadgen.ExtendedMix wholesale, and a "name=weight,name=weight" spec
// picks and reweights endpoints from the extended universe — so
// `-mix fleet=3,query=2,capacity=5` builds a mix DefaultMix never
// carried. Listed endpoints get the given weight, unlisted drop out.
func buildMix(spec string) ([]loadgen.Endpoint, error) {
	if spec == "" {
		return loadgen.DefaultMix(), nil
	}
	mix := loadgen.ExtendedMix()
	if spec == "extended" {
		return mix, nil
	}
	weights := map[string]float64{}
	for _, part := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad -mix entry %q (want name=weight)", part)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad -mix weight in %q", part)
		}
		weights[name] = w
	}
	var out []loadgen.Endpoint
	for _, e := range mix {
		if w, ok := weights[e.Name]; ok {
			e.Weight = w
			out = append(out, e)
			delete(weights, e.Name)
		}
	}
	for name := range weights {
		return nil, fmt.Errorf("unknown -mix endpoint %q (known: %s)", name, mixNames(mix))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-mix selected no endpoints")
	}
	return out, nil
}

func mixNames(mix []loadgen.Endpoint) string {
	names := make([]string, len(mix))
	for i, e := range mix {
		names[i] = e.Name
	}
	return strings.Join(names, ", ")
}

// startSelf hosts the full service on a loopback port over a throwaway
// data directory and returns its base URL plus a teardown.
func startSelf(rateLimit float64, shedWatermark int) (string, func(), error) {
	dir, err := os.MkdirTemp("", "vccmin-loadgen-*")
	if err != nil {
		return "", nil, err
	}
	srv, err := service.New(service.Config{
		DataDir:       dir,
		RateLimit:     rateLimit,
		ShedWatermark: shedWatermark,
	})
	if err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		os.RemoveAll(dir)
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		srv.Close()
		os.RemoveAll(dir)
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// vccmin-bench runs the repository's benchmark suite, records the result
// as a machine-readable BENCH_<n>.json snapshot, and gates against a
// recorded baseline with a relative ns/op threshold.
//
// Defaults match the CI smoke gate: the stable substrate benchmarks (the
// fault-map generators, cache access, workload generation, the pipeline
// step, the Eq. 1 urn model, the dvfs schedulers, the engine result
// store's cold/warm/disk paths and the colv1 shard codec and query
// evaluator) at -benchtime 100ms, compared against the highest-numbered
// BENCH_<n>.json in -dir at a 25% threshold.
//
//	vccmin-bench                         # run smoke set, compare to latest baseline
//	vccmin-bench -write                  # ...and record BENCH_<latest+1>.json
//	vccmin-bench -out BENCH_ci.json      # ...recording to an explicit file instead
//	vccmin-bench -bench . -pkg ./...     # the full suite
//	vccmin-bench -input bench.txt        # parse an existing `go test -bench` log
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"vccmin/internal/benchreg"
	"vccmin/internal/clirun"
)

// smokeBench selects the CI gate's benchmark set: single-threaded,
// CPU-bound substrate benches stable enough for a cross-run ns/op
// comparison. Excluded on purpose: the Monte Carlo figure benches
// (per-iteration sample sizes make single-run ns/op too noisy) and
// BenchmarkMeasuredCapacitySparseParallel (its ns/op scales with core
// count, so gating it against a baseline from a different machine would
// measure the runner, not the code — run it via `-bench . -pkg ./...`
// when recording full snapshots).
const smokeBench = "^(BenchmarkFaultMapGeneration|BenchmarkGenerateDense|BenchmarkGenerateMapSparse|BenchmarkGenerateMapSparseReuse|BenchmarkMeasuredCapacityDenseSerial|BenchmarkCacheAccess|BenchmarkWorkloadGeneration|BenchmarkPipelineThroughput|BenchmarkEq1UrnModel|BenchmarkFig1VoltageScaling|BenchmarkDVFSOracleSchedule|BenchmarkDVFSReactiveSchedule|BenchmarkEngineColdCompute|BenchmarkEngineWarmMemory|BenchmarkEngineDiskHit|BenchmarkFleetDieVccmin|BenchmarkFleetSweepSmall|BenchmarkPredictDie|BenchmarkShardEncode|BenchmarkShardDecode|BenchmarkQueryGroupBy1M)$"

// config carries the parsed flag set; one field per flag.
type config struct {
	pkgs      string  // comma-separated packages to benchmark
	bench     string  // go test -bench regex
	benchtime string  // go test -benchtime
	count     int     // go test -count (repeats averaged per benchmark)
	dir       string  // directory holding BENCH_<n>.json snapshots
	baseline  string  // explicit baseline path ("" = latest in dir)
	threshold float64 // relative ns/op gate
	write     bool    // record the next BENCH_<n>.json in dir
	out       string  // record to this exact path
	input     string  // parse an existing bench log instead of running
	extra     string  // comma-separated extra bench logs merged into the snapshot
	gate      bool    // exit non-zero on regression
}

func main() {
	var cfg config
	flag.StringVar(&cfg.pkgs, "pkg", ".,./internal/faults,./internal/dvfs,./internal/engine,./internal/population,./internal/colstore", "comma-separated packages to benchmark")
	flag.StringVar(&cfg.bench, "bench", smokeBench, "benchmark regex passed to go test -bench")
	flag.StringVar(&cfg.benchtime, "benchtime", "100ms", "per-benchmark budget passed to go test -benchtime")
	flag.IntVar(&cfg.count, "count", 1, "go test -count (repeats are averaged per benchmark)")
	flag.StringVar(&cfg.dir, "dir", ".", "directory holding the BENCH_<n>.json snapshots")
	flag.StringVar(&cfg.baseline, "baseline", "", "baseline snapshot (default: highest-numbered BENCH_<n>.json in -dir)")
	flag.Float64Var(&cfg.threshold, "threshold", 0.25, "relative ns/op regression gate (0.25 = fail beyond +25%)")
	flag.BoolVar(&cfg.write, "write", false, "record the run as the next BENCH_<n>.json in -dir")
	flag.StringVar(&cfg.out, "out", "", "record the run to this exact path (independent of -write numbering)")
	flag.StringVar(&cfg.input, "input", "", "parse this `go test -bench` output file instead of running benchmarks")
	flag.StringVar(&cfg.extra, "extra", "", "comma-separated extra bench-format logs merged into the snapshot (e.g. vccmin-loadgen -bench-out)")
	flag.BoolVar(&cfg.gate, "gate", true, "exit non-zero when a benchmark regresses past -threshold")
	version := clirun.VersionFlag()
	flag.Parse()
	if clirun.HandleVersion(version) {
		return
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "vccmin-bench:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	var (
		raw     io.Reader
		command string
	)
	if cfg.input != "" {
		f, err := os.Open(cfg.input)
		if err != nil {
			return err
		}
		defer f.Close()
		raw = f
		command = "parsed from " + cfg.input
	} else {
		args := []string{"test", "-run", "^$", "-bench", cfg.bench, "-benchtime", cfg.benchtime,
			"-count", fmt.Sprint(cfg.count), "-benchmem"}
		args = append(args, strings.Split(cfg.pkgs, ",")...)
		command = "go " + strings.Join(args, " ")
		fmt.Fprintln(os.Stderr, command)
		cmd := exec.Command("go", args...)
		var buf strings.Builder
		cmd.Stdout = io.MultiWriter(&buf, os.Stderr) // live progress + capture
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			return fmt.Errorf("benchmark run failed: %w", err)
		}
		raw = strings.NewReader(buf.String())
	}

	benches, err := benchreg.ParseBenchOutput(raw)
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark results matched (bench regex %q)", cfg.bench)
	}

	// Extra logs (e.g. a vccmin-loadgen -bench-out capture) ride along in
	// the snapshot. Their names never appear in a plain smoke run, so the
	// gate's name intersection leaves them as informational baseline-only
	// entries on later runs — recorded, compared when present, never a
	// spurious failure.
	if cfg.extra != "" {
		for _, path := range strings.Split(cfg.extra, ",") {
			path = strings.TrimSpace(path)
			if path == "" {
				continue
			}
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			more, err := benchreg.ParseBenchOutput(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("parsing -extra %s: %w", path, err)
			}
			if len(more) == 0 {
				return fmt.Errorf("-extra %s held no benchmark result lines", path)
			}
			benches = append(benches, more...)
			command += "; merged " + path
		}
	}
	snap := &benchreg.Snapshot{
		SchemaVersion: benchreg.SchemaVersion,
		CreatedAt:     time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		Command:       command,
		Benchmarks:    benches,
	}

	// Resolve the baseline before writing, so -write never compares the
	// run against itself.
	baseline := cfg.baseline
	if baseline == "" {
		if path, _, err := benchreg.LatestFile(cfg.dir); err == nil && path != "" {
			baseline = path
		} else if err != nil {
			return err
		}
	}

	if cfg.out != "" {
		if err := snap.WriteFile(cfg.out); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "recorded", cfg.out)
	}
	if cfg.write {
		path, err := benchreg.NextFile(cfg.dir)
		if err != nil {
			return err
		}
		if err := snap.WriteFile(path); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "recorded", path)
	}

	if baseline == "" {
		fmt.Fprintln(os.Stderr, "no baseline snapshot found; nothing to gate against")
		return nil
	}
	base, err := benchreg.ReadFile(baseline)
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "baseline:", baseline)
	rep := benchreg.Compare(base, snap, cfg.threshold)
	rep.Format(os.Stdout)
	if cfg.gate && rep.Failed() {
		return fmt.Errorf("%d benchmark(s) regressed beyond +%.0f%% vs %s", rep.Regressions, cfg.threshold*100, baseline)
	}
	return nil
}

// Command vccmin-sim runs the paper's simulation experiments and prints
// Figs. 8-12: per-benchmark normalized performance of word-disabling and
// block-disabling (with and without victim caches) below and above
// Vcc-min.
//
// Usage:
//
//	vccmin-sim                      # all five figures, default scale
//	vccmin-sim -fig 8               # one figure
//	vccmin-sim -pairs 50 -instructions 1000000   # paper-scale Monte Carlo
//	vccmin-sim -benchmarks crafty,gzip,mcf
//
// Single-run mode constructs the same sim task the server's POST
// /v1/sim constructs and prints its JSON document — byte-identical
// (modulo -pretty whitespace) across CLI, server and batch, and
// replayable from a shared -result-cache directory:
//
//	vccmin-sim -benchmark crafty -scheme block -pfail 1e-3
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vccmin/internal/clirun"
	"vccmin/internal/experiments"
	"vccmin/internal/tasks"
	"vccmin/internal/textplot"
)

func main() {
	figFlag := flag.String("fig", "", "figure to run (8, 9, 10, 11, 12); empty = all")
	benchmarks := flag.String("benchmarks", "", "comma-separated benchmark subset; empty = all 26")
	pairs := flag.Int("pairs", 50, "random fault-map pairs per block-disable configuration")
	instructions := flag.Int("instructions", 200_000, "instructions per simulation run")
	pfail := flag.Float64("pfail", 0.001, "per-cell failure probability below Vcc-min")
	seed := flag.Int64("seed", 1, "base random seed")
	plot := flag.Bool("plot", true, "render terminal plots in addition to tables")
	benchmark := flag.String("benchmark", "", "single-run mode: simulate one benchmark and print JSON")
	mode := flag.String("mode", "low", "single-run mode: voltage domain (low,high)")
	scheme := flag.String("scheme", "", "single-run mode: mitigation scheme (baseline,word,block,inc-word,bitfix)")
	victim := flag.String("victim", "", "single-run mode: victim cache (none,10t,6t)")
	geometry := flag.String("geom", "", "single-run mode: L1 geometry SIZExWAYSxBLOCK (empty = reference)")
	pretty := flag.Bool("pretty", true, "single-run mode: indent the JSON")
	cacheDir := clirun.ResultCacheFlag()
	version := clirun.VersionFlag()
	flag.Parse()
	if clirun.HandleVersion(version) {
		return
	}

	if *benchmark != "" {
		runSingle(tasks.SimRequest{
			Benchmark:    *benchmark,
			Mode:         *mode,
			Scheme:       *scheme,
			Victim:       *victim,
			Geometry:     *geometry,
			Pfail:        *pfail,
			Seed:         *seed,
			Instructions: *instructions,
		}, *cacheDir, *pretty)
		return
	}

	p := experiments.DefaultSimParams()
	p.FaultPairs = *pairs
	p.Instructions = *instructions
	p.Pfail = *pfail
	p.BaseSeed = *seed
	if *benchmarks != "" {
		p.Benchmarks = strings.Split(*benchmarks, ",")
	}

	want := map[string]bool{}
	if *figFlag == "" {
		for _, f := range []string{"8", "9", "10", "11", "12"} {
			want[f] = true
		}
	} else {
		want[*figFlag] = true
	}

	if want["8"] || want["9"] || want["10"] {
		start := time.Now()
		lv, err := experiments.RunLowVoltage(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "low-voltage experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("low-voltage Monte Carlo: %d benchmarks x %d pairs x %d instructions in %v\n",
			len(p.Benchmarks), p.FaultPairs, p.Instructions, time.Since(start).Round(time.Millisecond))
		if lv.WordDisableUnfit > 0 {
			fmt.Printf("note: %d/%d fault pairs would make a word-disabled cache unusable (whole-cache failure)\n",
				lv.WordDisableUnfit, p.FaultPairs)
		}
		if want["8"] {
			printFigure(lv.Fig8(), *plot)
		}
		if want["9"] {
			printFigure(lv.Fig9(), *plot)
		}
		if want["10"] {
			printFigure(lv.Fig10(), *plot)
		}
	}
	if want["11"] || want["12"] {
		hv, err := experiments.RunHighVoltage(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "high-voltage experiments:", err)
			os.Exit(1)
		}
		if want["11"] {
			printFigure(hv.Fig11(), *plot)
		}
		if want["12"] {
			printFigure(hv.Fig12(), *plot)
		}
	}
}

// runSingle is the engine-task path: one simulation, the same task
// identity the server computes for POST /v1/sim.
func runSingle(req tasks.SimRequest, cacheDir string, pretty bool) {
	task, err := tasks.NewSimTask(req)
	if err != nil {
		clirun.Fatal("vccmin-sim", err)
	}
	eng, err := clirun.NewEngine(cacheDir)
	if err != nil {
		clirun.Fatal("vccmin-sim", err)
	}
	res, err := clirun.RunTask(eng, "vccmin-sim", task)
	if err != nil {
		clirun.Fatal("vccmin-sim", err)
	}
	if err := clirun.WriteOutput("", res.Bytes, pretty); err != nil {
		clirun.Fatal("vccmin-sim", err)
	}
}

func printFigure(f experiments.Figure, plot bool) {
	fmt.Printf("\n==== %s ====\n\n", f.Title)
	fmt.Printf("%-10s", "benchmark")
	for _, s := range f.Series {
		fmt.Printf(" %26s", s)
	}
	fmt.Println()
	for _, row := range f.Rows {
		fmt.Printf("%-10s", row.Benchmark)
		for _, v := range row.Values {
			fmt.Printf(" %25.1f%%", 100*v)
		}
		fmt.Println()
	}
	fmt.Printf("%-10s", "AVERAGE")
	for _, v := range f.Averages {
		fmt.Printf(" %25.1f%%", 100*v)
	}
	fmt.Println()
	for i, s := range f.Series {
		fmt.Printf("  average %-30s loss: %.1f%%\n", s+":", 100*(1-f.Averages[i]))
	}

	if plot && len(f.Rows) > 0 {
		labels := make([]string, len(f.Rows))
		values := make([][]float64, len(f.Rows))
		for i, row := range f.Rows {
			labels[i] = row.Benchmark
			values[i] = row.Values
		}
		fmt.Println()
		fmt.Print(textplot.GroupedBar(textplot.Options{Width: 56}, labels, f.Series, values, 0.4, 1.1))
	}
}

// Command vccmin-analysis regenerates the paper's analytic artifacts:
// Fig. 1 (voltage scaling), Figs. 3-7 (fault-distribution analysis) and
// Table I (transistor overhead), printing numeric series and terminal
// plots.
//
// Usage:
//
//	vccmin-analysis              # everything
//	vccmin-analysis -fig 5       # one figure (1, 3, 4, 5, 6, 7, cluster)
//	vccmin-analysis -table 1     # Table I only
//
// -json switches to the engine-task form: the capacity analysis, the
// operating point and the Table I overheads at -pfail run as one batch
// through the same task types the server's endpoints and POST /v1/batch
// execute, printed as the batch document (byte-identical values to the
// server's, replayable from a shared -result-cache directory):
//
//	vccmin-analysis -json -pfail 1e-3
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"vccmin/internal/clirun"
	"vccmin/internal/engine"
	"vccmin/internal/experiments"
	"vccmin/internal/power"
	"vccmin/internal/prob"
	"vccmin/internal/tasks"
	"vccmin/internal/textplot"
)

func main() {
	fig := flag.String("fig", "", "figure to print (1, 3, 4, 5, 6, 7, cluster); empty = all")
	table := flag.String("table", "", "table to print (1); empty = all")
	points := flag.Int("points", 100, "samples per analytic curve")
	jsonOut := flag.Bool("json", false, "emit the pfail-point analysis as an engine-task batch document")
	pfail := flag.Float64("pfail", 0.001, "per-cell failure probability for -json mode")
	trials := flag.Int("trials", 0, "-json mode: Monte Carlo cross-check trials on the capacity task")
	pretty := flag.Bool("pretty", true, "-json mode: indent the JSON")
	cacheDir := clirun.ResultCacheFlag()
	version := clirun.VersionFlag()
	flag.Parse()
	if clirun.HandleVersion(version) {
		return
	}

	if *jsonOut {
		if err := printJSONBatch(*pfail, *trials, *cacheDir, *pretty); err != nil {
			fmt.Fprintln(os.Stderr, "vccmin-analysis:", err)
			os.Exit(1)
		}
		return
	}

	all := *fig == "" && *table == ""
	if all || *table == "1" {
		printTableI()
	}
	figs := map[string]func(int){
		"1": printFig1, "3": printFig3, "4": printFig4,
		"5": printFig5, "6": printFig6, "7": printFig7,
		"cluster": printFigCluster, "granularity": printFigGranularity,
		"bitfix": printFigBitFix,
	}
	if all {
		for _, k := range []string{"1", "3", "4", "5", "6", "7", "cluster", "granularity", "bitfix"} {
			figs[k](*points)
		}
		return
	}
	if *fig != "" {
		f, ok := figs[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
			os.Exit(2)
		}
		f(*points)
	}
}

func header(title string) {
	fmt.Printf("\n==== %s ====\n\n", title)
}

// printJSONBatch runs the pfail-point analysis as one heterogeneous
// batch through the engine — the exact document POST /v1/batch answers
// for the same three requests.
func printJSONBatch(pfail float64, trials int, cacheDir string, pretty bool) error {
	eng, err := clirun.NewEngine(cacheDir)
	if err != nil {
		return err
	}
	capacity, err := json.Marshal(tasks.CapacityRequest{Pfail: &pfail, Trials: trials})
	if err != nil {
		return err
	}
	op, err := json.Marshal(tasks.OperatingPointRequest{Pfail: &pfail})
	if err != nil {
		return err
	}
	results := engine.RunBatch(context.Background(), eng, []engine.BatchItem{
		{Kind: tasks.KindCapacity, Params: capacity},
		{Kind: tasks.KindOperatingPoint, Params: op},
		{Kind: tasks.KindOverhead},
	}, 0)
	for _, r := range results {
		if r.Error != "" {
			return fmt.Errorf("%s: %s", r.Kind, r.Error)
		}
	}
	doc, err := json.Marshal(struct {
		Results []engine.BatchResult `json:"results"`
	}{results})
	if err != nil {
		return err
	}
	return clirun.WriteOutput("", doc, pretty)
}

// printTableI renders the overhead task's rows — the same typed result
// GET /v1/overhead serves.
func printTableI() {
	header("Table I: overhead comparison (transistors)")
	v, err := tasks.OverheadTask{}.Run(context.Background())
	if err != nil {
		fmt.Fprintln(os.Stderr, "vccmin-analysis:", err)
		os.Exit(1)
	}
	resp := v.(tasks.OverheadResponse)
	fmt.Printf("%-24s %12s %12s %12s %10s %10s\n",
		"Scheme", "Tag", "Disable", "Victim$", "Align.net", "Total")
	for _, r := range resp.Rows {
		align := "no"
		if r.AlignmentNetwork {
			align = "yes"
		}
		fmt.Printf("%-24s %12d %12d %12d %10s %10d\n",
			r.Scheme, r.TagTransistors, r.DisableTransistors, r.VictimTransistors, align, r.Total)
	}
}

func pointsToXY(label string, pts []power.Point, sel func(power.Point) float64) textplot.XY {
	xy := textplot.XY{Label: label}
	for _, p := range pts {
		xy.X = append(xy.X, p.Freq)
		xy.Y = append(xy.Y, sel(p))
	}
	return xy
}

func printFig1(n int) {
	header("Fig. 1a: classic voltage scaling (stops at Vcc-min)")
	classic, below := experiments.Fig1(n)
	opt := textplot.Options{Width: 64, Height: 16, XLabel: "normalized frequency", YLabel: "normalized V / P / perf"}
	fmt.Print(textplot.Line(opt,
		pointsToXY("voltage", classic, func(p power.Point) float64 { return p.Voltage }),
		pointsToXY("power", classic, func(p power.Point) float64 { return p.Power }),
		pointsToXY("performance", classic, func(p power.Point) float64 { return p.Performance }),
	))
	header("Fig. 1b: voltage scaling below Vcc-min")
	fmt.Print(textplot.Line(opt,
		pointsToXY("voltage", below, func(p power.Point) float64 { return p.Voltage }),
		pointsToXY("power", below, func(p power.Point) float64 { return p.Power }),
		pointsToXY("performance", below, func(p power.Point) float64 { return p.Performance }),
	))
	m := power.Default()
	fmt.Printf("zones: cubic above f=%.3f, low-voltage to f=%.3f, linear below\n",
		m.FreqAtVccMin(), m.FreqAtVFloor())
}

func plotSeries(xlabel, ylabel string, series ...prob.Series) {
	xys := make([]textplot.XY, 0, len(series))
	for _, s := range series {
		xys = append(xys, textplot.XY{Label: s.Label, X: s.X, Y: s.Y})
	}
	fmt.Print(textplot.Line(textplot.Options{Width: 64, Height: 16, XLabel: xlabel, YLabel: ylabel}, xys...))
}

func printFig3(n int) {
	header("Fig. 3: fraction of faulty blocks vs pfail (Eq. 2)")
	s := experiments.Fig3(n)
	plotSeries("pfail", "faulty blocks", s)
	for _, pf := range []float64{0.0005, 0.001, 0.0013, 0.002, 0.005, 0.010} {
		fmt.Printf("  pfail=%-7g faulty=%6.1f%%  capacity=%6.1f%%\n",
			pf, 100*at(s, pf), 100*(1-at(s, pf)))
	}
}

func printFig4(n int) {
	header("Fig. 4: capacity distribution at pfail=0.001 (Eq. 3)")
	s := experiments.Fig4()
	plotSeries("capacity", "probability", s)
	mean, std := prob.CapacityMeanStd(512, 537, 0.001)
	fmt.Printf("  mean=%.1f%%  sd=%.2fpp  P[capacity>50%%]=%.4f\n",
		100*mean, 100*std, prob.CapacityAtLeast(512, 537, 0.001, 0.5))
}

func printFig5(n int) {
	header("Fig. 5: word-disable whole-cache failure vs pfail (Eqs. 4-5)")
	s := experiments.Fig5(n)
	plotSeries("pfail", "P[whole cache failure]", s)
	for _, pf := range []float64{0.0005, 0.001, 0.0015, 0.002} {
		fmt.Printf("  pfail=%-7g pwcf=%.2e\n", pf, at(s, pf))
	}
}

func printFig6(n int) {
	header("Fig. 6: capacity vs pfail for 32/64/128B blocks (Eq. 2)")
	series := experiments.Fig6(n)
	plotSeries("pfail", "capacity", series...)
}

func printFig7(n int) {
	header("Fig. 7: incremental word-disabling capacity vs pfail (Eq. 6)")
	s := experiments.Fig7(n)
	plotSeries("pfail", "capacity", s)
}

func printFigCluster(n int) {
	header("Extension: uniform vs clustered faults (paper future work)")
	series := experiments.FigCluster(n, 8)
	plotSeries("pfail", "capacity", series...)
	fmt.Println("  clusters of 8 cells concentrate damage into fewer blocks,")
	fmt.Println("  so block-disabling keeps more capacity than the uniform model predicts.")
}

func printFigGranularity(n int) {
	header("Extension: disabling granularity (block vs set vs way)")
	series := experiments.FigGranularity(n)
	plotSeries("pfail", "capacity", series...)
	fmt.Println("  coarser disabling units collapse exponentially faster — the case for")
	fmt.Println("  block-level disabling over the set/way disabling of the yield literature.")
}

func printFigBitFix(n int) {
	header("Extension: whole-cache failure, word-disable vs bit-fix")
	series := experiments.FigBitFix(n)
	plotSeries("pfail", "P[whole cache failure]", series...)
	for _, pf := range []float64{0.0002, 0.0005, 0.001} {
		fmt.Printf("  pfail=%-7g word-disable=%.2e  bit-fix=%.2e\n", pf, at(series[0], pf), at(series[1], pf))
	}
	fmt.Println("  one-repair-per-group bit-fix is far more fragile at L1-relevant pfail,")
	fmt.Println("  matching the paper's focus on word-disabling as the L1 comparison point.")
}

// at interpolates series s at x.
func at(s prob.Series, x float64) float64 {
	for i := 1; i < s.Len(); i++ {
		if s.X[i] >= x {
			t := (x - s.X[i-1]) / (s.X[i] - s.X[i-1])
			return s.Y[i-1]*(1-t) + s.Y[i]*t
		}
	}
	return s.Y[s.Len()-1]
}

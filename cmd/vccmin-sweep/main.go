// Command vccmin-sweep runs the sharded parameter-sweep engine over the
// paper's design space: a cartesian grid of pfail × cache geometry ×
// scheme × victim-cache kind × disabling granularity, each cell evaluated
// analytically (Section IV), by Monte Carlo simulation, and against the
// Fig. 1 energy model.
//
// Cells are deterministic: each derives its seed stream from the hash of
// its coordinates plus -seed, so any cell reproduces identically whether
// run alone, unsharded, or by any shard layout. Results stream to -out as
// JSON lines in cell order; -resume skips cells already present there.
//
// Usage:
//
//	vccmin-sweep -pfail 1e-4:1e-3:5 -schemes block,word -out cells.jsonl
//	vccmin-sweep -pfail 1e-4:1e-3:5 -schemes block,word -shards 4 -shard 2 -out cells.jsonl
//	vccmin-sweep -resume -out cells.jsonl            # finish an interrupted run
//	vccmin-sweep -summarize cells.jsonl              # aggregate an existing file
//	vccmin-sweep -result-cache ~/.cache/vccmin ...   # engine path: repeats replay from the store
//
// Axis flags take comma-separated values; -pfail also accepts lo:hi:n for
// n log-spaced points.
//
// With -result-cache the run goes through the engine task layer (the
// same sweep task the server's POST /v1/batch executes): the whole
// result is content-addressed under the spec's canonical hash, so a
// repeated invocation — or one that another entrypoint already computed
// over the same store — writes identical rows without re-simulating.
// The streaming default path keeps its incremental checkpoint semantics
// for runs too large to hold in memory; both paths emit byte-identical
// rows.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"vccmin/internal/cliflag"
	"vccmin/internal/clirun"
	"vccmin/internal/dvfs"
	"vccmin/internal/geom"
	"vccmin/internal/prob"
	"vccmin/internal/sim"
	"vccmin/internal/sweep"
	"vccmin/internal/tasks"
)

func main() {
	var (
		pfails     = flag.String("pfail", "1e-3", "pfail values: comma list or lo:hi:n (log-spaced)")
		geoms      = flag.String("geom", "32768x8x64", "cache geometries, comma list of SIZExWAYSxBLOCK")
		schemes    = flag.String("schemes", "block", "schemes, comma list (baseline,word,block,inc-word,bitfix)")
		victims    = flag.String("victims", "none", "victim caches, comma list (none,10t,6t)")
		grans      = flag.String("gran", "block", "disabling granularities, comma list (block,set,way)")
		policies   = flag.String("policies", "", "DVFS policy axis, comma list (static-high,static-low,oracle,reactive,interval); empty = classic cells only")
		dvfsWls    = flag.String("dvfs-workloads", "", "multi-phase workloads per scheduled cell, comma list (default compute-memory-swing)")
		benchmarks = flag.String("benchmarks", "", "benchmarks per cell, comma list (default crafty,mcf,gzip)")
		trials     = flag.Int("trials", 3, "fault-map pairs per cell")
		instrs     = flag.Int("instructions", 50_000, "simulated instructions per run")
		seed       = flag.Int64("seed", 1, "base seed for every cell's seed stream")
		workers    = flag.Int("workers", 0, "concurrent cell evaluations (0 = GOMAXPROCS)")
		shards     = flag.Int("shards", 1, "total shard count")
		shard      = flag.Int("shard", 0, "this run's shard index in [0,shards)")
		out        = flag.String("out", "", "output JSONL file (empty = stdout, no resume)")
		resume     = flag.Bool("resume", false, "skip cells already present in -out")
		summary    = flag.Bool("summary", true, "print per-axis summaries after the run")
		summarize  = flag.String("summarize", "", "only aggregate an existing JSONL file and exit")
		cacheDir   = clirun.ResultCacheFlag()
		version    = clirun.VersionFlag()
	)
	flag.Parse()
	if clirun.HandleVersion(version) {
		return
	}

	if *summarize != "" {
		if err := summarizeFile(*summarize); err != nil {
			fatal(err)
		}
		return
	}

	spec := sweep.Spec{
		Trials:       *trials,
		Instructions: *instrs,
		BaseSeed:     *seed,
		Workers:      *workers,
		ShardIndex:   *shard,
		ShardCount:   *shards,
	}
	var err error
	if spec.Pfails, err = cliflag.ParsePfails(*pfails); err != nil {
		fatal(err)
	}
	if spec.Geometries, err = parseGeoms(*geoms); err != nil {
		fatal(err)
	}
	if spec.Schemes, err = cliflag.ParseList(*schemes, sim.ParseScheme); err != nil {
		fatal(err)
	}
	if spec.Victims, err = cliflag.ParseList(*victims, sim.ParseVictim); err != nil {
		fatal(err)
	}
	if spec.Granularities, err = cliflag.ParseList(*grans, prob.ParseGranularity); err != nil {
		fatal(err)
	}
	if *policies != "" {
		if spec.Policies, err = cliflag.ParseList(*policies, dvfs.ParsePolicy); err != nil {
			fatal(err)
		}
	}
	if *dvfsWls != "" {
		spec.DVFSWorkloads = strings.Split(*dvfsWls, ",")
	}
	if *benchmarks != "" {
		spec.Benchmarks = strings.Split(*benchmarks, ",")
	}

	var res *sweep.Result
	switch {
	case *resume && *out == "":
		fatal(fmt.Errorf("-resume needs -out"))
	case *cacheDir != "" && *resume:
		fatal(fmt.Errorf("-result-cache and -resume are exclusive: the engine store already skips completed work"))
	case *cacheDir != "":
		if err := runViaEngine(spec, *cacheDir, *out, *summary); err != nil {
			fatal(err)
		}
		return
	case *resume:
		// ResumeFile loads the checkpoint, truncates any torn final line
		// and appends the missing cells on the valid prefix's boundary.
		res, err = sweep.ResumeFile(spec, *out, sweep.RunOptions{})
		if err != nil {
			fatal(err)
		}
		if res.ResumeTornBytes > 0 {
			fmt.Fprintf(os.Stderr, "sweep: dropped %d bytes of torn final line from %s (valid prefix %d bytes)\n",
				res.ResumeTornBytes, *out, res.ResumeValidBytes)
		}
	default:
		opt := sweep.RunOptions{Out: os.Stdout}
		if *out != "" {
			f, err := os.OpenFile(*out, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			opt.Out = f
		}
		res, err = sweep.Run(spec, opt)
		if err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "sweep: grid %d cells, shard %d/%d owns %d: computed %d, skipped %d (resume)\n",
		res.TotalCells, *shard, *shards, res.ShardCells, res.Computed, res.Skipped)
	if *summary && len(res.Summary) > 0 {
		printSummary(res.Summary)
	}
}

// runViaEngine executes the sweep as the same engine task the server's
// batch endpoint runs: the whole result is content-addressed by the
// spec's canonical hash in the store under cacheDir, so a repeated
// invocation replays stored bytes instead of re-simulating. Rows are
// emitted as the same JSONL stream the direct path writes.
func runViaEngine(spec sweep.Spec, cacheDir, out string, summary bool) error {
	spec = spec.WithDefaults()
	if err := spec.Check(); err != nil {
		return err
	}
	task := tasks.SweepRunTask{Spec: spec}
	eng, err := clirun.NewEngine(cacheDir)
	if err != nil {
		return err
	}
	res, err := clirun.RunTask(eng, "vccmin-sweep", task)
	if err != nil {
		return err
	}
	var resp tasks.SweepRunResponse
	if err := res.Decode(&resp); err != nil {
		return err
	}
	w := io.Writer(os.Stdout)
	if out != "" {
		f, err := os.OpenFile(out, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	for _, row := range resp.Rows {
		b, err := json.Marshal(row)
		if err != nil {
			return err
		}
		if _, err := bw.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sweep: grid %d cells, shard %d/%d owns %d: computed %d (hash %s, source %s)\n",
		resp.TotalCells, spec.ShardIndex, spec.ShardCount, resp.ShardCells, resp.Computed, resp.Hash, res.Source)
	if summary && len(resp.Summary) > 0 {
		printSummary(resp.Summary)
	}
	return nil
}

func parseGeoms(s string) ([]geom.Geometry, error) {
	return cliflag.ParseList(s, geom.Parse)
}

func summarizeFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rows, err := sweep.ReadRows(f)
	if err != nil {
		return err
	}
	fmt.Printf("%d cells in %s\n", len(rows), path)
	printSummary(sweep.Summarize(rows))
	return nil
}

func printSummary(groups []sweep.AxisSummary) {
	fmt.Fprintf(os.Stderr, "%-12s %-24s %6s %10s %10s %10s\n",
		"axis", "value", "cells", "E[cap]", "IPC loss", "E/instr")
	for _, g := range groups {
		fmt.Fprintf(os.Stderr, "%-12s %-24s %6d %9.1f%% %9.1f%% %10.3f\n",
			g.Axis, g.Value, g.Cells,
			100*g.MeanExpectedCapacity, 100*g.MeanIPCDegradation, g.MeanEnergyPerInstruction)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vccmin-sweep:", err)
	os.Exit(1)
}

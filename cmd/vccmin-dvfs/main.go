// Command vccmin-dvfs is the phase-aware dual-mode scheduling explorer:
// it runs multi-phase workloads across the high-voltage (3 GHz) and
// low-voltage (600 MHz, below Vcc-min, fault-mitigated) domains under a
// set of scheduling policies, and reports every (workload, scheme,
// policy) operating point with its Pareto frontier over (performance,
// energy per instruction).
//
// The command is a thin adapter over the engine task layer: it
// constructs the same dvfs-explore task the server's GET /v1/dvfs and
// POST /v1/batch construct, so the emitted document is byte-identical
// (modulo -pretty whitespace) to the server's for the same parameters —
// and with -result-cache pointed at a directory, repeated invocations
// replay the stored bytes instead of re-simulating.
//
// Usage:
//
//	vccmin-dvfs                                    # default grid, JSON to stdout
//	vccmin-dvfs -policies oracle,reactive          # restrict the policy axis
//	vccmin-dvfs -policy oracle                     # -policy is an alias
//	vccmin-dvfs -workloads bursty-server -schemes block -out frontier.json
//	vccmin-dvfs -result-cache ~/.cache/vccmin      # persistent cross-run result reuse
//	vccmin-dvfs -list                              # show workloads and policies
//	vccmin-dvfs -runs                              # include full per-run phase accounting
//
// Axis flags take comma-separated values. -scale rescales every
// workload's phase budgets proportionally to roughly the given total
// instruction count; -penalty prices a mode switch in cycles.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"vccmin/internal/cliflag"
	"vccmin/internal/clirun"
	"vccmin/internal/dvfs"
	"vccmin/internal/tasks"
	"vccmin/internal/workload"
)

func main() {
	var (
		workloads = flag.String("workloads", "", "multi-phase workloads, comma list (default: all builtins)")
		schemes   = flag.String("schemes", "block,word", "low-voltage schemes, comma list (baseline,word,block,inc-word,bitfix)")
		policies  = flag.String("policies", "", "scheduling policies, comma list (static-high,static-low,oracle,reactive,interval; default: all)")
		victim    = flag.String("victim", "none", "victim cache (none,10t,6t)")
		pfail     = flag.Float64("pfail", 0.001, "per-cell failure probability at the low-voltage point")
		seed      = flag.Int64("seed", 1, "base seed for every run's random streams")
		scale     = flag.Int("scale", 0, "rescale each workload to about this many instructions (0 = reference scale)")
		penalty   = flag.Int("penalty", 0, "mode-switch penalty in cycles (0 = default 2000, -1 = free switches)")
		interval  = flag.Int("interval", 0, "decision-chunk size in instructions (0 = default 2000)")
		threshold = flag.Float64("ipc-threshold", 0, "reactive policy's high-mode IPC threshold (0 = default 0.1)")
		workers   = flag.Int("workers", 0, "concurrent runs (0 = GOMAXPROCS); never changes results")
		out       = flag.String("out", "", "output JSON file (empty = stdout)")
		pretty    = flag.Bool("pretty", true, "indent the JSON (false emits the server's exact compact bytes)")
		runs      = flag.Bool("runs", false, "include the full per-run phase accounting in the output")
		list      = flag.Bool("list", false, "list builtin workloads and policies, then exit")
		cacheDir  = clirun.ResultCacheFlag()
		version   = clirun.VersionFlag()
	)
	// -policy is an alias for -policies, matching the singular-axis habit
	// of one-policy invocations (vccmin-dvfs -policy oracle).
	flag.StringVar(policies, "policy", "", "alias for -policies")
	flag.Parse()
	if clirun.HandleVersion(version) {
		return
	}

	if *list {
		fmt.Println("multi-phase workloads:")
		for _, m := range workload.MultiPhaseProfiles() {
			var parts []string
			for _, ph := range m.Phases {
				parts = append(parts, fmt.Sprintf("%s:%d", ph.Benchmark, ph.Instructions))
			}
			fmt.Printf("  %-22s %s\n", m.Name, strings.Join(parts, " "))
		}
		fmt.Println("policies:")
		for _, p := range dvfs.Policies() {
			fmt.Printf("  %s\n", p)
		}
		return
	}

	// Construct the same task the server constructs for GET /v1/dvfs:
	// the switch-economics knobs flow through hashed task fields, so the
	// emitted "hash" really does identify the output bytes.
	req := tasks.DVFSExploreRequest{
		Workloads:     cliflag.Split(*workloads),
		Schemes:       cliflag.Split(*schemes),
		Policies:      cliflag.Split(*policies),
		Victim:        *victim,
		Pfail:         pfail,
		Seed:          *seed,
		Scale:         *scale,
		SwitchPenalty: *penalty,
		Interval:      *interval,
		IPCThreshold:  *threshold,
		IncludeRuns:   *runs,
	}
	task, err := tasks.NewDVFSExploreTask(req)
	if err != nil {
		clirun.Fatal("vccmin-dvfs", err)
	}
	// Workers only changes scheduling — it lives on the spec, outside
	// the request, and outside the canonical hash.
	task.Spec.Workers = *workers
	if task.Spec.Workers <= 0 {
		task.Spec.Workers = runtime.GOMAXPROCS(0)
	}
	eng, err := clirun.NewEngine(*cacheDir)
	if err != nil {
		clirun.Fatal("vccmin-dvfs", err)
	}
	res, err := clirun.RunTask(eng, "vccmin-dvfs", task)
	if err != nil {
		clirun.Fatal("vccmin-dvfs", err)
	}
	if err := clirun.WriteOutput(*out, res.Bytes, *pretty); err != nil {
		clirun.Fatal("vccmin-dvfs", err)
	}

	var resp tasks.DVFSResponse
	if err := res.Decode(&resp); err != nil {
		clirun.Fatal("vccmin-dvfs", err)
	}
	fmt.Fprintf(os.Stderr, "dvfs: %d operating points, %d on the frontier\n",
		len(resp.Points), len(resp.Frontier))
}

// Command vccmin-dvfs is the phase-aware dual-mode scheduling explorer:
// it runs multi-phase workloads across the high-voltage (3 GHz) and
// low-voltage (600 MHz, below Vcc-min, fault-mitigated) domains under a
// set of scheduling policies, and reports every (workload, scheme,
// policy) operating point with its Pareto frontier over (performance,
// energy per instruction).
//
// Every run is seeded and deterministic: the same flags produce
// byte-identical JSON, which is what the golden fixtures pin.
//
// Usage:
//
//	vccmin-dvfs                                    # default grid, JSON to stdout
//	vccmin-dvfs -policies oracle,reactive          # restrict the policy axis
//	vccmin-dvfs -policy oracle                     # -policy is an alias
//	vccmin-dvfs -workloads bursty-server -schemes block -out frontier.json
//	vccmin-dvfs -list                              # show workloads and policies
//	vccmin-dvfs -runs                              # include full per-run phase accounting
//
// Axis flags take comma-separated values. -scale rescales every
// workload's phase budgets proportionally to roughly the given total
// instruction count; -penalty prices a mode switch in cycles.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"vccmin/internal/cliflag"
	"vccmin/internal/dvfs"
	"vccmin/internal/sim"
	"vccmin/internal/workload"
)

func main() {
	var (
		workloads = flag.String("workloads", "", "multi-phase workloads, comma list (default: all builtins)")
		schemes   = flag.String("schemes", "block,word", "low-voltage schemes, comma list (baseline,word,block,inc-word,bitfix)")
		policies  = flag.String("policies", "", "scheduling policies, comma list (static-high,static-low,oracle,reactive,interval; default: all)")
		victim    = flag.String("victim", "none", "victim cache (none,10t,6t)")
		pfail     = flag.Float64("pfail", 0.001, "per-cell failure probability at the low-voltage point")
		seed      = flag.Int64("seed", 1, "base seed for every run's random streams")
		scale     = flag.Int("scale", 0, "rescale each workload to about this many instructions (0 = reference scale)")
		penalty   = flag.Int("penalty", 0, "mode-switch penalty in cycles (0 = default 2000, -1 = free switches)")
		interval  = flag.Int("interval", 0, "decision-chunk size in instructions (0 = default 2000)")
		threshold = flag.Float64("ipc-threshold", 0, "reactive policy's high-mode IPC threshold (0 = default 0.1)")
		workers   = flag.Int("workers", 0, "concurrent runs (0 = GOMAXPROCS); never changes results")
		out       = flag.String("out", "", "output JSON file (empty = stdout)")
		runs      = flag.Bool("runs", false, "include the full per-run phase accounting in the output")
		list      = flag.Bool("list", false, "list builtin workloads and policies, then exit")
	)
	// -policy is an alias for -policies, matching the singular-axis habit
	// of one-policy invocations (vccmin-dvfs -policy oracle).
	flag.StringVar(policies, "policy", "", "alias for -policies")
	flag.Parse()

	if *list {
		fmt.Println("multi-phase workloads:")
		for _, m := range workload.MultiPhaseProfiles() {
			var parts []string
			for _, ph := range m.Phases {
				parts = append(parts, fmt.Sprintf("%s:%d", ph.Benchmark, ph.Instructions))
			}
			fmt.Printf("  %-22s %s\n", m.Name, strings.Join(parts, " "))
		}
		fmt.Println("policies:")
		for _, p := range dvfs.Policies() {
			fmt.Printf("  %s\n", p)
		}
		return
	}

	spec := dvfs.ExploreSpec{
		Pfail:   *pfail,
		Seed:    *seed,
		Scale:   *scale,
		Workers: *workers,
	}
	if *workloads != "" {
		spec.Workloads = cliflag.Split(*workloads)
	}
	var err error
	if spec.Schemes, err = cliflag.ParseList(*schemes, sim.ParseScheme); err != nil {
		fatal(err)
	}
	if *policies != "" {
		if spec.Policies, err = cliflag.ParseList(*policies, dvfs.ParsePolicy); err != nil {
			fatal(err)
		}
	}
	if spec.Victim, err = sim.ParseVictim(*victim); err != nil {
		fatal(err)
	}
	// Switch-economics knobs go through hashed spec fields, so the
	// emitted "hash" really does identify the output bytes.
	spec.SwitchPenalty = *penalty
	spec.Interval = *interval
	spec.IPCThreshold = *threshold

	res, err := dvfs.Explore(spec)
	if err != nil {
		fatal(err)
	}

	payload := output{
		Hash:     spec.CanonicalHash(),
		Pfail:    *pfail,
		Seed:     *seed,
		Points:   res.Points,
		Frontier: res.ParetoPoints(),
	}
	if *runs {
		payload.Runs = res.Runs
	}
	b, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		fatal(err)
	}
	b = append(b, '\n')
	if *out == "" {
		os.Stdout.Write(b)
	} else if err := os.WriteFile(*out, b, 0o644); err != nil {
		fatal(err)
	}

	fmt.Fprintf(os.Stderr, "dvfs: %d operating points, %d on the frontier\n",
		len(res.Points), len(payload.Frontier))
}

// output is the CLI's JSON shape: the canonical hash first (so a reader
// can key caches the way /v1/dvfs does), then points and frontier in
// grid order.
type output struct {
	Hash     string        `json:"hash"`
	Pfail    float64       `json:"pfail"`
	Seed     int64         `json:"seed"`
	Points   []dvfs.Point  `json:"points"`
	Frontier []dvfs.Point  `json:"frontier"`
	Runs     []dvfs.Result `json:"runs,omitempty"`
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vccmin-dvfs:", err)
	os.Exit(1)
}

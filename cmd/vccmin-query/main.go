// Command vccmin-query aggregates a sweep's result set through the
// colstore query layer: filter rows (-where, -pfail-min/-pfail-max),
// group them by axes (-group-by) and report count/mean/min/max and
// p50/p90/p99 per metric (-metrics) — without materializing the rows.
//
// The grid flags name the same design space vccmin-sweep takes, and the
// command constructs the exact query task the server's POST /v1/query
// runs, so the emitted document is byte-identical (modulo -pretty
// whitespace) to the server's for the same question. With -rows the
// answer comes from an existing sweep checkpoint (a vccmin-sweep -out
// file) after verifying it holds exactly the grid's result set; without
// it the sweep is computed inline. Both paths answer identically: the
// aggregation is row-order independent, so a resumed checkpoint (whose
// rows are not in cell order) and a fresh run agree byte for byte.
//
// Usage:
//
//	vccmin-query -pfail 1e-4:1e-3:5 -schemes block,word -group-by scheme
//	vccmin-query -rows cells.jsonl -group-by pfail,scheme -metrics mean_ipc
//	vccmin-query -where scheme=block -pfail-max 5e-4 -group-by pfail
//	vccmin-query -result-cache ~/.cache/vccmin ...   # repeats replay from the store
//
// Axis flags take comma-separated values; -pfail also accepts lo:hi:n
// for n log-spaced points. -where takes axis=value pairs, comma
// separated.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vccmin/internal/cliflag"
	"vccmin/internal/clirun"
	"vccmin/internal/colstore"
	"vccmin/internal/sweep"
	"vccmin/internal/tasks"
)

func main() {
	var (
		pfails     = flag.String("pfail", "1e-3", "pfail values: comma list or lo:hi:n (log-spaced)")
		geoms      = flag.String("geom", "32768x8x64", "cache geometries, comma list of SIZExWAYSxBLOCK")
		schemes    = flag.String("schemes", "block", "schemes, comma list (baseline,word,block,inc-word,bitfix)")
		victims    = flag.String("victims", "none", "victim caches, comma list (none,10t,6t)")
		grans      = flag.String("gran", "block", "disabling granularities, comma list (block,set,way)")
		policies   = flag.String("policies", "", "DVFS policy axis, comma list; empty = classic cells only")
		dvfsWls    = flag.String("dvfs-workloads", "", "multi-phase workloads per scheduled cell, comma list")
		benchmarks = flag.String("benchmarks", "", "benchmarks per cell, comma list (default crafty,mcf,gzip)")
		trials     = flag.Int("trials", 3, "fault-map pairs per cell")
		instrs     = flag.Int("instructions", 50_000, "simulated instructions per run")
		seed       = flag.Int64("seed", 1, "base seed for every cell's seed stream")
		workers    = flag.Int("workers", 0, "concurrent cell evaluations when computing (0 = GOMAXPROCS); never changes results")
		shards     = flag.Int("shards", 1, "total shard count")
		shard      = flag.Int("shard", 0, "this run's shard index in [0,shards)")
		rowsPath   = flag.String("rows", "", "answer from this sweep checkpoint (JSONL) instead of computing")
		groupBy    = flag.String("group-by", "", "axes to group by, comma list of "+strings.Join(colstore.Axes, ","))
		metrics    = flag.String("metrics", "", "metrics to aggregate, comma list (default "+strings.Join(tasks.DefaultQueryMetrics, ",")+")")
		where      = flag.String("where", "", "equality filters, comma list of axis=value")
		pfailMin   = flag.Float64("pfail-min", 0, "keep rows with pfail >= this (0 = no lower bound)")
		pfailMax   = flag.Float64("pfail-max", 0, "keep rows with pfail <= this (0 = no upper bound)")
		out        = flag.String("out", "", "output JSON file (empty = stdout)")
		pretty     = flag.Bool("pretty", true, "indent the JSON (false emits the server's exact compact bytes)")
		cacheDir   = clirun.ResultCacheFlag()
		version    = clirun.VersionFlag()
	)
	flag.Parse()
	if clirun.HandleVersion(version) {
		return
	}

	req := tasks.QueryRequest{
		Sweep: tasks.SweepRequest{
			Geometries:    cliflag.Split(*geoms),
			Schemes:       cliflag.Split(*schemes),
			Victims:       cliflag.Split(*victims),
			Granularities: cliflag.Split(*grans),
			Policies:      cliflag.Split(*policies),
			DVFSWorkloads: cliflag.Split(*dvfsWls),
			Benchmarks:    cliflag.Split(*benchmarks),
			Trials:        *trials,
			Instructions:  *instrs,
			BaseSeed:      *seed,
			Workers:       *workers,
			ShardIndex:    *shard,
			ShardCount:    *shards,
		},
		GroupBy: cliflag.Split(*groupBy),
		Metrics: cliflag.Split(*metrics),
	}
	var err error
	if req.Sweep.Pfails, err = cliflag.ParsePfails(*pfails); err != nil {
		clirun.Fatal("vccmin-query", err)
	}
	if req.Where, err = parseWhere(*where); err != nil {
		clirun.Fatal("vccmin-query", err)
	}
	setIfNonZero(&req.PfailMin, *pfailMin)
	setIfNonZero(&req.PfailMax, *pfailMax)

	task, err := tasks.NewQueryTask(req)
	if err != nil {
		clirun.Fatal("vccmin-query", err)
	}
	if *rowsPath != "" {
		f, err := os.Open(*rowsPath)
		if err != nil {
			clirun.Fatal("vccmin-query", err)
		}
		rows, err := sweep.ReadRows(f)
		f.Close()
		if err != nil {
			clirun.Fatal("vccmin-query", err)
		}
		if task, err = task.WithRows(rows); err != nil {
			clirun.Fatal("vccmin-query", err)
		}
	}

	eng, err := clirun.NewEngine(*cacheDir)
	if err != nil {
		clirun.Fatal("vccmin-query", err)
	}
	res, err := clirun.RunTask(eng, "vccmin-query", task)
	if err != nil {
		clirun.Fatal("vccmin-query", err)
	}
	if err := clirun.WriteOutput(*out, res.Bytes, *pretty); err != nil {
		clirun.Fatal("vccmin-query", err)
	}
	var resp tasks.QueryResponse
	if err := res.Decode(&resp); err != nil {
		clirun.Fatal("vccmin-query", err)
	}
	fmt.Fprintf(os.Stderr, "query: %d rows, %d matched, %d groups (sweep %s, query %s)\n",
		resp.Rows, resp.Matched, len(resp.Groups), resp.SweepHash, resp.Hash)
}

// parseWhere parses "axis=value,axis=value" into the request's filter
// map. Axis validity is checked by the task constructor, not here.
func parseWhere(s string) (map[string]string, error) {
	parts := cliflag.Split(s)
	if len(parts) == 0 {
		return nil, nil
	}
	m := make(map[string]string, len(parts))
	for _, p := range parts {
		k, v, ok := strings.Cut(p, "=")
		if !ok || k == "" {
			return nil, fmt.Errorf("bad -where element %q: want axis=value", p)
		}
		if _, dup := m[k]; dup {
			return nil, fmt.Errorf("duplicate -where axis %q", k)
		}
		m[k] = v
	}
	return m, nil
}

// setIfNonZero materializes an optional bound flag: 0 means "no bound"
// and stays nil in the request.
func setIfNonZero(dst **float64, v float64) {
	if v != 0 {
		val := v
		*dst = &val
	}
}

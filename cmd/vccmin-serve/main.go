// Command vccmin-serve runs the repository's HTTP service: the Section IV
// closed-form analysis, Table I overhead, the Fig. 1 operating-point model
// and single simulations as synchronous endpoints, and the parameter-sweep
// engine behind an async job API with checkpoint/resume.
//
// Jobs are deduplicated by the canonical hash of their spec, so POSTing
// the same sweep twice returns the first job, finished or not. Sweep
// checkpoints live under -data; restarting the server against the same
// directory resumes interrupted jobs without recomputing finished cells.
//
// Usage:
//
//	vccmin-serve -addr :8780 -data ./serve-data -workers 2
//
// SIGINT/SIGTERM shut down gracefully: the listener stops, in-flight jobs
// drain up to -drain-timeout, and anything still running is checkpointed
// for the next start.
//
// Quick check:
//
//	curl 'localhost:8780/v1/capacity?pfail=1e-3'
//	curl -X POST localhost:8780/v1/sweeps -d '{"pfails":[0.001],"schemes":["block"]}'
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vccmin/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", ":8780", "listen address")
		data    = flag.String("data", "vccmin-serve-data", "directory for sweep-job specs and row checkpoints")
		workers = flag.Int("workers", 2, "concurrently running sweep jobs")
		cache   = flag.Int("cache", 512, "LRU entries for synchronous-endpoint responses")
		maxGrid = flag.Int("max-grid", 4096, "largest accepted sweep grid (cells)")
		drain   = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight jobs")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(os.Stderr, "vccmin-serve: listening on %s, data in %s\n", *addr, *data)
	err := service.Serve(ctx, service.Config{
		Addr:         *addr,
		DataDir:      *data,
		Workers:      *workers,
		CacheEntries: *cache,
		MaxGridCells: *maxGrid,
		DrainTimeout: *drain,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vccmin-serve:", err)
		os.Exit(1)
	}
}

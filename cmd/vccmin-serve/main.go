// Command vccmin-serve runs the repository's HTTP service: the Section IV
// closed-form analysis, Table I overhead, the Fig. 1 operating-point model
// and single simulations as synchronous endpoints, and the parameter-sweep
// engine behind an async job API with checkpoint/resume.
//
// Jobs are deduplicated by the canonical hash of their spec, so POSTing
// the same sweep twice returns the first job, finished or not. Sweep
// checkpoints live under -data; restarting the server against the same
// directory resumes interrupted jobs without recomputing finished cells.
//
// Usage:
//
//	vccmin-serve -addr :8780 -data ./serve-data -workers 2
//
// Traffic hardening is on by default: per-client token-bucket rate
// limiting (-rate-limit, 429 + Retry-After when over; 0 disables) and
// admission control that sheds batch-shaped work with 503 once the
// backlog crosses -shed-watermark, while synchronous endpoints keep
// flowing on their own worker tier (-interactive-workers). Sweep rows
// stream live from GET /v1/sweeps/<id>/stream (SSE with Last-Event-ID
// resume, or ?format=jsonl).
//
// SIGINT/SIGTERM shut down gracefully: the listener stops, in-flight jobs
// drain up to -drain-timeout, and anything still running is checkpointed
// for the next start.
//
// -pprof serves net/http/pprof on its own address and mux — off the
// public listener and outside the rate limiter — so a production
// profile never competes with (or leaks through) the service surface.
//
// Quick check:
//
//	curl 'localhost:8780/v1/capacity?pfail=1e-3'
//	curl -X POST localhost:8780/v1/sweeps -d '{"pfails":[0.001],"schemes":["block"]}'
//	curl -N 'localhost:8780/v1/sweeps/<id>/stream?format=jsonl'
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vccmin/internal/buildinfo"
	"vccmin/internal/clirun"
	"vccmin/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", ":8780", "listen address")
		data       = flag.String("data", "vccmin-serve-data", "directory for sweep-job specs, row checkpoints and the engine result store")
		workers    = flag.Int("workers", 2, "concurrently running sweep jobs")
		iworkers   = flag.Int("interactive-workers", 0, "workers reserved for synchronous endpoints (0 = GOMAXPROCS)")
		rateLimit  = flag.Float64("rate-limit", 50, "per-client requests/second budget (0 disables rate limiting)")
		rateBurst  = flag.Float64("rate-burst", 0, "per-client token-bucket depth (0 = 2x rate-limit)")
		watermark  = flag.Int("shed-watermark", 64, "queued batch items beyond which new batch work is shed with 503")
		cache      = flag.Int("cache", 512, "in-memory result-tier entries for synchronous endpoints")
		maxGrid    = flag.Int("max-grid", 4096, "largest accepted sweep grid (cells)")
		maxBatch   = flag.Int("max-batch", 64, "largest accepted POST /v1/batch request (items)")
		drain      = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight jobs")
		hdrTimeout = flag.Duration("read-header-timeout", 10*time.Second, "slowloris guard: how long a connection may take to send its header")
		maxHeader  = flag.Int("max-header-bytes", 1<<20, "largest accepted request-header block")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty disables)")
		version    = clirun.VersionFlag()
	)
	flag.Parse()
	if clirun.HandleVersion(version) {
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *pprofAddr != "" {
		go servePprof(*pprofAddr)
	}

	fmt.Fprintf(os.Stderr, "vccmin-serve: %s listening on %s, data in %s\n",
		buildinfo.String(), *addr, *data)
	err := service.Serve(ctx, service.Config{
		Addr:               *addr,
		DataDir:            *data,
		Workers:            *workers,
		InteractiveWorkers: *iworkers,
		RateLimit:          *rateLimit,
		RateBurst:          *rateBurst,
		ShedWatermark:      *watermark,
		CacheEntries:       *cache,
		MaxGridCells:       *maxGrid,
		MaxBatchItems:      *maxBatch,
		DrainTimeout:       *drain,
		ReadHeaderTimeout:  *hdrTimeout,
		MaxHeaderBytes:     *maxHeader,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vccmin-serve:", err)
		os.Exit(1)
	}
}

// servePprof hosts the net/http/pprof handlers on their own mux and
// listener, never the service's: the profiling surface stays off the
// public address, outside the rate limiter, and bindable to loopback
// only.
func servePprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	fmt.Fprintln(os.Stderr, "vccmin-serve: pprof on", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		fmt.Fprintln(os.Stderr, "vccmin-serve: pprof:", err)
	}
}

// Command vccmin-faultmap draws random low-voltage fault maps and reports
// what each disabling scheme would make of them: block-disable capacity
// and per-set associativity, word-disable fitness, and the incremental
// word-disable pair classification.
//
// Usage:
//
//	vccmin-faultmap -pfail 0.001 -seed 42
//	vccmin-faultmap -pfail 0.002 -trials 1000      # Monte Carlo summary
//	vccmin-faultmap -cluster 8                     # clustered fault model
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"vccmin/internal/clirun"
	"vccmin/internal/core"
	"vccmin/internal/faults"
	"vccmin/internal/geom"
	"vccmin/internal/prob"
	"vccmin/internal/stats"
)

func main() {
	size := flag.Int("size", 32*1024, "cache size in bytes")
	ways := flag.Int("ways", 8, "associativity")
	block := flag.Int("block", 64, "block size in bytes")
	pfail := flag.Float64("pfail", 0.001, "per-cell failure probability")
	seed := flag.Int64("seed", 1, "random seed")
	trials := flag.Int("trials", 1, "number of maps to draw (summary mode when > 1)")
	cluster := flag.Int("cluster", 1, "fault cluster size in cells (1 = uniform)")
	dump := flag.String("dump", "", "write the drawn map to this file (JSON)")
	load := flag.String("load", "", "inspect a map from this file instead of drawing one")
	version := clirun.VersionFlag()
	flag.Parse()
	if clirun.HandleVersion(version) {
		return
	}

	g, err := geom.New(*size, *ways, *block)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		m, err := faults.Read(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		report(m, *pfail)
		return
	}
	if *trials <= 1 {
		rng := rand.New(rand.NewSource(*seed))
		m := draw(g, *pfail, rng, *cluster)
		if *dump != "" {
			f, err := os.Create(*dump)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := m.Write(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *dump)
		}
		report(m, *pfail)
		return
	}
	monteCarlo(g, *pfail, *seed, *cluster, *trials)
}

func draw(g geom.Geometry, pfail float64, rng *rand.Rand, cluster int) *faults.Map {
	if cluster > 1 {
		return faults.GenerateClustered(g, 32, faults.ClusterParams{Pfail: pfail, Size: cluster}, rng)
	}
	return faults.Generate(g, 32, pfail, rng)
}

func report(m *faults.Map, pfail float64) {
	g := m.Geom
	fmt.Println(m)

	d := core.BuildBlockDisable(m)
	fmt.Printf("\nblock-disable: %d/%d blocks enabled (%.1f%% capacity)\n",
		d.EnabledBlocks(), g.Blocks(), 100*d.CapacityFraction())
	fmt.Printf("analytic expectation (Eq. 2): %.1f%%\n",
		100*prob.ExpectedCapacity(g.CellsPerBlock(), pfail))
	fmt.Println("\nenabled-ways histogram (sets x ways):")
	for w, n := range d.WaysHistogram() {
		if n > 0 {
			fmt.Printf("  %d ways: %3d sets\n", w, n)
		}
	}

	wd := core.EvaluateWordDisable(m, core.ReferenceWordDisable())
	fmt.Printf("\nword-disable: fit=%v (failed subblocks: %d/%d)\n",
		wd.Fit, wd.FailedSubblocks, wd.TotalSubblocks)
	if wd.Fit {
		fmt.Printf("  low-voltage geometry: %v, +1 cycle latency\n", wd.LowVoltageGeom)
	}

	inc := core.EvaluateIncrementalWD(m, core.ReferenceWordDisable())
	fmt.Printf("\nincremental word-disable: %d full / %d half / %d disabled pairs (%.1f%% capacity)\n",
		inc.FullPairs, inc.HalfPairs, inc.DisabledPairs, 100*inc.CapacityFraction())

	bf := core.EvaluateBitFix(m, core.ReferenceBitFix())
	fmt.Printf("\n%s\n", bf)
}

func monteCarlo(g geom.Geometry, pfail float64, seed int64, cluster, trials int) {
	rng := rand.New(rand.NewSource(seed))
	caps := make([]float64, 0, trials)
	unfit := 0
	minWays := g.Ways
	for i := 0; i < trials; i++ {
		m := draw(g, pfail, rng, cluster)
		d := core.BuildBlockDisable(m)
		caps = append(caps, d.CapacityFraction())
		if !core.EvaluateWordDisable(m, core.ReferenceWordDisable()).Fit {
			unfit++
		}
		if w := d.MinSetWays(); w < minWays {
			minWays = w
		}
	}
	s := stats.Summarize(caps)
	fmt.Printf("%d maps of %v at pfail=%g (cluster=%d)\n", trials, g, pfail, cluster)
	fmt.Printf("block-disable capacity: mean=%.1f%% sd=%.2fpp min=%.1f%% max=%.1f%%\n",
		100*s.Mean, 100*s.StdDev, 100*s.Min, 100*s.Max)
	mean, sd := prob.CapacityMeanStd(g.Blocks(), g.CellsPerBlock(), pfail)
	fmt.Printf("analytic (Eqs. 2-3):    mean=%.1f%% sd=%.2fpp\n", 100*mean, 100*sd)
	fmt.Printf("worst set associativity seen: %d ways\n", minWays)
	fmt.Printf("word-disable whole-cache failures: %d/%d (analytic %.2e)\n",
		unfit, trials, prob.WordDisableWholeCacheFailProb(g.Blocks(), g.BlockBytes, 32, 8, pfail))
}

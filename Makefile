GO ?= go

# Coverage floor (percent) enforced by `make cover` on ./internal/...
# (last measured 84.0% after the colstore suites landed).
COVER_FLOOR ?= 80
# Per-target budget for the `make fuzz` smoke run.
FUZZTIME ?= 10s

.PHONY: build test race bench bench-json bench-gate diff-race fmt vet doc-check link-check api-check clean-check check fuzz cover serve sweep-demo loadgen-smoke fleet-smoke query-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Record the smoke benchmark suite as the next machine-readable
# BENCH_<n>.json snapshot and gate against the previous one (see
# cmd/vccmin-bench for flags; -bench . -pkg ./... runs everything).
bench-json:
	$(GO) run ./cmd/vccmin-bench -write

# The CI regression gate: rerun the smoke suite and compare against the
# checked-in baseline without advancing the snapshot numbering.
bench-gate:
	$(GO) run ./cmd/vccmin-bench -out BENCH_ci.json

# The differential equivalence suites under the race detector: the frozen
# pre-optimization reference implementations (dense fault-map generation,
# oracle DP, probe measurement, frontier marking, the naive row-wise
# query evaluator, the rebuild-per-probe fleet prober) held byte-identical
# to the optimized hot paths.
diff-race:
	$(GO) test -race -run 'Differential|ProbeCacheHit|MarkFrontierMatchesRebuild|FrontierSet' ./internal/faults ./internal/dvfs ./internal/colstore ./internal/population

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...
	$(GO) vet ./examples/...

# Every internal package must carry a proper package comment ("Package
# <name> ..." — or "Command <name> ..." for main packages under
# internal/tools). go vet does not enforce this, so a grep does.
doc-check:
	@fail=0; \
	for d in internal/*/ internal/tools/*/; do \
		ls $$d*.go >/dev/null 2>&1 || continue; \
		name=$$(basename $$d); \
		if ! grep -lqE "^// (Package|Command) $$name( |$$)" $$d*.go; then \
			echo "doc-check: $$d has no '// Package $$name ...' comment"; fail=1; \
		fi; \
	done; \
	if ! grep -qE "^// Package vccmin " vccmin.go; then \
		echo "doc-check: vccmin.go has no package comment"; fail=1; \
	fi; \
	[ $$fail -eq 0 ] && echo "doc-check: all packages documented" || exit 1

# Broken relative links (and #fragments) in any *.md fail the build.
link-check:
	$(GO) run ./internal/tools/linkcheck

# The registered /v1 routes and docs/openapi.yaml must list exactly the
# same method+path pairs.
api-check:
	$(GO) run ./internal/tools/apicheck

# No tracked file may match .gitignore: build artifacts (cover.out,
# BENCH_ci.json, serve data) must never be committed.
clean-check:
	@out="$$(git ls-files -ci --exclude-standard)"; \
	if [ -n "$$out" ]; then \
		echo "clean-check: tracked files matching .gitignore:"; echo "$$out"; exit 1; \
	fi; \
	echo "clean-check: no gitignored path is tracked"

# The static quality gate CI runs before the test jobs.
check: vet fmt doc-check link-check api-check clean-check

# Short fuzz smoke over the checkpoint readers, the batched sparse
# sampler and the colv1 shard codec (go test allows one fuzz target per
# invocation, hence the separate runs).
fuzz:
	$(GO) test ./internal/sweep -run='^$$' -fuzz=FuzzReadRows -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/sweep -run='^$$' -fuzz=FuzzLoadCompleted -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/faults -run='^$$' -fuzz=FuzzSamplerBatched -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/colstore -run='^$$' -fuzz=FuzzShardDecode -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/colstore -run='^$$' -fuzz=FuzzVarintColumn -fuzztime=$(FUZZTIME)

# Coverage over the internal packages with a hard floor.
cover:
	$(GO) test -coverprofile=cover.out -covermode=atomic ./internal/...
	@$(GO) tool cover -func=cover.out | tail -n 1
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ { gsub(/%/, "", $$3); print $$3 }'); \
	awk -v t="$$total" -v floor="$(COVER_FLOOR)" 'BEGIN { \
		if (t+0 < floor+0) { printf "FAIL: coverage %.1f%% below floor %s%%\n", t, floor; exit 1 } \
		else { printf "coverage %.1f%% meets floor %s%%\n", t, floor } }'

# Run the HTTP service locally with checkpoints under /tmp.
serve:
	$(GO) run ./cmd/vccmin-serve -addr :8780 -data /tmp/vccmin-serve-data

# A small end-to-end sweep: 3 pfail points × 2 schemes, sharded 2 ways,
# then a resume pass that must recompute nothing.
sweep-demo:
	$(GO) run ./cmd/vccmin-sweep -pfail 1e-4:1e-3:3 -schemes block,word \
		-trials 2 -instructions 20000 -shards 2 -shard 0 -out /tmp/sweep-demo.jsonl
	$(GO) run ./cmd/vccmin-sweep -pfail 1e-4:1e-3:3 -schemes block,word \
		-trials 2 -instructions 20000 -shards 2 -shard 1 -out /tmp/sweep-demo-s1.jsonl
	cat /tmp/sweep-demo-s1.jsonl >> /tmp/sweep-demo.jsonl
	$(GO) run ./cmd/vccmin-sweep -pfail 1e-4:1e-3:3 -schemes block,word \
		-trials 2 -instructions 20000 -resume -out /tmp/sweep-demo.jsonl
	$(GO) run ./cmd/vccmin-sweep -summarize /tmp/sweep-demo.jsonl

# Mixed-traffic replay against a self-hosted service: open-loop
# arrivals, latency histograms, 429/503 accounting. The bench-format
# output merges into a snapshot via `vccmin-bench -extra`.
loadgen-smoke:
	$(GO) run ./cmd/vccmin-loadgen -self -rate 200 -requests 600 \
		-json loadgen-smoke.json -bench-out loadgen-smoke.txt

# Fleet population smoke: a 20000-die sweep (minutes of work before the
# incremental-walk prober, seconds after) and a prediction study through
# the vccmin-fleet CLI (the same tasks GET/POST /v1/fleet run).
fleet-smoke:
	$(GO) run ./cmd/vccmin-fleet -dies 20000 -schemes block,word -seed 7 \
		-out /tmp/fleet-smoke.json
	$(GO) run ./cmd/vccmin-fleet -predict 6 -dies 20000 -sample 256 -seed 7 \
		-out /tmp/fleet-predict-smoke.json

# Columnar query smoke: the same aggregation answered from a finished
# sweep checkpoint (-rows, the fold path) and computed from scratch must
# produce byte-identical JSON — the CLI face of POST /v1/query.
QUERY_SMOKE_SPEC = -pfail 1e-4:1e-3:3 -schemes block,word -trials 2 -instructions 20000
query-smoke:
	$(GO) run ./cmd/vccmin-sweep $(QUERY_SMOKE_SPEC) -out /tmp/query-smoke.jsonl
	$(GO) run ./cmd/vccmin-query $(QUERY_SMOKE_SPEC) -group-by pfail,scheme \
		-rows /tmp/query-smoke.jsonl -out /tmp/query-smoke-folded.json
	$(GO) run ./cmd/vccmin-query $(QUERY_SMOKE_SPEC) -group-by pfail,scheme \
		-out /tmp/query-smoke-computed.json
	cmp /tmp/query-smoke-folded.json /tmp/query-smoke-computed.json
	@echo "query-smoke: folded and computed answers are byte-identical"

ci: build check race bench sweep-demo loadgen-smoke fleet-smoke query-smoke cover

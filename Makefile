GO ?= go

.PHONY: build test race bench fmt vet sweep-demo ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# A small end-to-end sweep: 3 pfail points × 2 schemes, sharded 2 ways,
# then a resume pass that must recompute nothing.
sweep-demo:
	$(GO) run ./cmd/vccmin-sweep -pfail 1e-4:1e-3:3 -schemes block,word \
		-trials 2 -instructions 20000 -shards 2 -shard 0 -out /tmp/sweep-demo.jsonl
	$(GO) run ./cmd/vccmin-sweep -pfail 1e-4:1e-3:3 -schemes block,word \
		-trials 2 -instructions 20000 -shards 2 -shard 1 -out /tmp/sweep-demo-s1.jsonl
	cat /tmp/sweep-demo-s1.jsonl >> /tmp/sweep-demo.jsonl
	$(GO) run ./cmd/vccmin-sweep -pfail 1e-4:1e-3:3 -schemes block,word \
		-trials 2 -instructions 20000 -resume -out /tmp/sweep-demo.jsonl
	$(GO) run ./cmd/vccmin-sweep -summarize /tmp/sweep-demo.jsonl

ci: build vet fmt race bench sweep-demo

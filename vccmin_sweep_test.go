package vccmin

import (
	"bytes"
	"strings"
	"testing"
)

func TestFacadeSweep(t *testing.T) {
	spec := SweepSpec{
		Pfails:       []float64{1e-3},
		Schemes:      []Scheme{BlockDisable, WordDisable},
		Benchmarks:   []string{"gzip"},
		Trials:       1,
		Instructions: 4_000,
		BaseSeed:     3,
	}
	var buf bytes.Buffer
	res, err := RunSweep(spec, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Computed != 2 || res.TotalCells != 2 {
		t.Fatalf("computed %d of %d cells, want 2 of 2", res.Computed, res.TotalCells)
	}
	for _, r := range res.Rows {
		if r.MeanIPC <= 0 || r.BaselineIPC <= 0 {
			t.Errorf("cell %s missing IPC data: %+v", r.Key, r)
		}
	}

	rows, err := ReadSweepRows(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("read back %d rows, want 2", len(rows))
	}
	if got := len(SummarizeSweep(rows)); got == 0 {
		t.Error("empty summary")
	}

	// Resuming from the finished output recomputes nothing and writes
	// nothing new.
	var more bytes.Buffer
	res2, err := ResumeSweep(spec, strings.NewReader(buf.String()), &more)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Computed != 0 || res2.Skipped != 2 || more.Len() != 0 {
		t.Fatalf("resume recomputed %d cells (skipped %d, %d bytes)", res2.Computed, res2.Skipped, more.Len())
	}
}

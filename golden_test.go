package vccmin_test

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"vccmin"
	"vccmin/internal/benchreg"
	"vccmin/internal/tasks"
)

// The golden-regression corpus pins byte-stable outputs under
// testdata/golden/. Any refactor that changes a byte of a sweep row, its
// field order, a float rendering or a Table I count shows up as a diff
// here. After an intentional contract change, regenerate with
//
//	go test . -run Golden -update
//
// and review the diff like any other code change.
var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

func goldenPath(name string) string { return filepath.Join("testdata", "golden", name) }

// checkGolden compares got against the named golden file, rewriting it
// under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := goldenPath(name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden (%d vs %d bytes).\nIf the change is intentional, regenerate with: go test . -run Golden -update\ngot:\n%s\nwant:\n%s",
			name, len(got), len(want), clip(got), clip(want))
	}
}

func clip(b []byte) []byte {
	const max = 2000
	if len(b) > max {
		return append(append([]byte{}, b[:max]...), "…"...)
	}
	return b
}

// goldenSweepSpec is the corpus sweep: tiny (4 cells, one benchmark, a
// 2k-instruction budget) but crossing a fault-dependent and a
// fault-independent scheme so the rows exercise both evaluation paths.
// Do not change it — changing the spec changes every row's seed stream.
func goldenSweepSpec() vccmin.SweepSpec {
	return vccmin.SweepSpec{
		Pfails:       []float64{0.001, 0.005},
		Schemes:      []vccmin.Scheme{vccmin.Baseline, vccmin.BlockDisable},
		Benchmarks:   []string{"crafty"},
		Trials:       2,
		Instructions: 2000,
		BaseSeed:     7,
	}
}

// TestGoldenSweepRows pins the exact JSONL stream of the corpus sweep:
// cell keys, seed derivation, simulation results and float rendering.
func TestGoldenSweepRows(t *testing.T) {
	var buf bytes.Buffer
	res, err := vccmin.RunSweep(goldenSweepSpec(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Computed != 4 {
		t.Fatalf("corpus sweep computed %d cells, want 4", res.Computed)
	}
	checkGolden(t, "sweep_tiny.jsonl", buf.Bytes())
}

// TestGoldenSweepSummary pins the per-axis aggregation of the same rows.
func TestGoldenSweepSummary(t *testing.T) {
	var buf bytes.Buffer
	if _, err := vccmin.RunSweep(goldenSweepSpec(), &buf); err != nil {
		t.Fatal(err)
	}
	rows, err := vccmin.ReadSweepRows(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(vccmin.SummarizeSweep(rows), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "sweep_tiny_summary.json", append(got, '\n'))
}

// goldenOverheadRow spells out a Table I row for the corpus (the internal
// Row marshals its Scheme as an opaque int).
type goldenOverheadRow struct {
	Scheme             string `json:"scheme"`
	TagTransistors     int    `json:"tag_transistors"`
	DisableTransistors int    `json:"disable_transistors"`
	VictimTransistors  int    `json:"victim_transistors"`
	AlignmentNetwork   bool   `json:"alignment_network"`
	Total              int    `json:"total"`
}

// TestGoldenTableI pins the paper's Table I transistor accounting.
func TestGoldenTableI(t *testing.T) {
	rows := vccmin.TableI()
	out := make([]goldenOverheadRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, goldenOverheadRow{
			Scheme:             r.Scheme.String(),
			TagTransistors:     r.TagTransistors,
			DisableTransistors: r.DisableTransistors,
			VictimTransistors:  r.VictimTransistors,
			AlignmentNetwork:   r.AlignmentNetwork,
			Total:              r.Total,
		})
	}
	got, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table1.json", append(got, '\n'))
}

// goldenBenchSnapshot is a canonical BENCH_<n>.json payload exercising
// every schema field: procs, benchmem columns, custom metrics and
// sub-benchmark names. Do not edit casually — the fixture pins the
// on-disk schema the CI regression gate consumes.
func goldenBenchSnapshot() *benchreg.Snapshot {
	return &benchreg.Snapshot{
		SchemaVersion: benchreg.SchemaVersion,
		CreatedAt:     "2026-07-27T00:00:00Z",
		GoVersion:     "go1.24.0",
		GOOS:          "linux",
		GOARCH:        "amd64",
		Command:       "go test -run ^$ -bench . -benchtime 100ms -count 1 -benchmem .",
		Benchmarks: []benchreg.Benchmark{
			{
				Name:       "BenchmarkFaultMapGeneration",
				Procs:      8,
				Iterations: 32941,
				NsPerOp:    10568,
			},
			{
				Name:        "BenchmarkGenerateMapSparseReuse/L1-32K/pfail=0.001",
				Procs:       8,
				Iterations:  106099,
				NsPerOp:     4530,
				BytesPerOp:  0,
				AllocsPerOp: 0,
			},
			{
				Name:       "BenchmarkFig8LowVoltage",
				Procs:      8,
				Iterations: 7,
				NsPerOp:    163000000,
				Metrics: map[string]float64{
					"blockDis-norm": 0.978,
					"wordDis-norm":  0.806,
				},
			},
			{
				// An alloc-bearing entry: allocs/op is a gated axis (the
				// bench gate fails on cur > base*(1+threshold)+0.5), so the
				// schema fixture must pin its serialized form.
				Name:        "BenchmarkMeasuredCapacityDenseSerial",
				Procs:       8,
				Iterations:  6186,
				NsPerOp:     347802,
				BytesPerOp:  53416,
				AllocsPerOp: 12,
				Metrics:     map[string]float64{"capacity": 0.5864},
			},
		},
	}
}

// TestGoldenBenchSchema pins the BENCH JSON schema byte for byte and
// proves it round-trips: the golden fixture decodes into the canonical
// snapshot, and re-encoding reproduces the file exactly.
func TestGoldenBenchSchema(t *testing.T) {
	snap := goldenBenchSnapshot()
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "bench_schema.json", buf.Bytes())

	raw, err := os.ReadFile(goldenPath("bench_schema.json"))
	if err != nil {
		t.Skipf("golden file missing (run -update first): %v", err)
	}
	back, err := benchreg.Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("golden bench schema does not decode: %v", err)
	}
	if !reflect.DeepEqual(back, snap) {
		t.Fatal("decoded golden snapshot differs from the canonical value")
	}
	var again bytes.Buffer
	if err := back.Encode(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), raw) {
		t.Fatal("bench schema round trip is not byte-identical")
	}
}

// goldenDVFSSpec is the corpus explorer grid: three multi-phase
// workloads × two schemes × all five policies at a small instruction
// scale. Do not change it — the fixture pins every operating point's
// bytes, and the dominance assertions below are part of the contract.
func goldenDVFSSpec() vccmin.DVFSExploreSpec {
	return vccmin.DVFSExploreSpec{
		Workloads: []string{"compute-memory-swing", "bursty-server", "cache-pressure-ramp"},
		Schemes:   []vccmin.Scheme{vccmin.BlockDisable, vccmin.WordDisable},
		Pfail:     0.001,
		Seed:      7,
		Scale:     6000,
	}
}

// TestGoldenDVFSFrontier pins the Pareto explorer's JSON (the same
// points/frontier shape cmd/vccmin-dvfs and /v1/dvfs emit) and enforces
// the scheduling contract: for every workload × scheme, the oracle
// policy is at least as fast as static-low and at most as hungry as
// static-high.
func TestGoldenDVFSFrontier(t *testing.T) {
	res, err := vccmin.ExploreDVFS(goldenDVFSSpec())
	if err != nil {
		t.Fatal(err)
	}
	type cell struct{ workload, scheme string }
	perf := map[cell]map[string]float64{}
	epi := map[cell]map[string]float64{}
	for _, p := range res.Points {
		c := cell{p.Workload, p.Scheme}
		if perf[c] == nil {
			perf[c], epi[c] = map[string]float64{}, map[string]float64{}
		}
		perf[c][p.Policy] = p.Performance
		epi[c][p.Policy] = p.EnergyPerInstruction
	}
	if len(perf) != 6 {
		t.Fatalf("explored %d workload×scheme cells, want 6", len(perf))
	}
	for c := range perf {
		if perf[c]["oracle"] < perf[c]["static-low"] {
			t.Errorf("%v: oracle performance %v below static-low %v", c, perf[c]["oracle"], perf[c]["static-low"])
		}
		if epi[c]["oracle"] > epi[c]["static-high"] {
			t.Errorf("%v: oracle energy/instr %v above static-high %v", c, epi[c]["oracle"], epi[c]["static-high"])
		}
	}

	got, err := json.MarshalIndent(struct {
		Points   []vccmin.DVFSPoint `json:"points"`
		Frontier []vccmin.DVFSPoint `json:"frontier"`
	}{res.Points, vccmin.DVFSFrontier(res.Points)}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "dvfs_frontier.json", append(got, '\n'))
}

// TestGoldenFleetYield pins the fleet-sweep contract for a 10k-die
// fleet across two schemes: the exact bytes /v1/fleet and vccmin-fleet
// emit (grid, Vcc-min histograms, yield-versus-voltage curves,
// quantiles, per-wafer summaries and the canonical hash), proven
// byte-identical at workers=1 and workers=4 before comparing against
// the committed fixture.
func TestGoldenFleetYield(t *testing.T) {
	task, err := tasks.NewFleetTask(tasks.FleetRequest{
		Dies:    10_000,
		Schemes: []string{"block", "word"},
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	task.Spec.Workers = 4
	parallel, err := task.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(parallel)
	if err != nil {
		t.Fatal(err)
	}

	task.Spec.Workers = 1
	serial, err := task.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	serialBytes, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, serialBytes) {
		t.Fatal("fleet response differs between workers=4 and workers=1")
	}
	checkGolden(t, "fleet_yield.json", append(got, '\n'))
}

// goldenSweepRows runs the corpus sweep with a given worker bound and
// returns its rows.
func goldenSweepRows(t *testing.T, workers int) []vccmin.SweepRow {
	t.Helper()
	var buf bytes.Buffer
	if _, err := vccmin.RunSweepWith(goldenSweepSpec(), vccmin.SweepRunOptions{Out: &buf, Workers: workers}); err != nil {
		t.Fatal(err)
	}
	rows, err := vccmin.ReadSweepRows(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// TestGoldenColstoreShard pins the colv1 columnar encoding of the corpus
// sweep byte for byte: dictionary assignment, zigzag-delta varints,
// footer layout. The shard must come out identical whether the rows were
// produced serially or by a saturated pool, and decoding the committed
// fixture must reproduce the rows exactly.
func TestGoldenColstoreShard(t *testing.T) {
	serialRows := goldenSweepRows(t, 1)
	enc, err := vccmin.EncodeSweepShard(serialRows)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := vccmin.EncodeSweepShard(goldenSweepRows(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, parallel) {
		t.Fatal("colstore shard differs between workers=1 and workers=8")
	}
	checkGolden(t, "sweep_tiny.col", enc)

	raw, err := os.ReadFile(goldenPath("sweep_tiny.col"))
	if err != nil {
		t.Skipf("golden file missing (run -update first): %v", err)
	}
	back, err := vccmin.DecodeSweepShard(raw)
	if err != nil {
		t.Fatalf("golden shard does not decode: %v", err)
	}
	if !reflect.DeepEqual(back, serialRows) {
		t.Fatal("rows decoded from the golden shard differ from the corpus sweep")
	}
	again, err := vccmin.EncodeSweepShard(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, raw) {
		t.Fatal("colstore shard round trip is not byte-identical")
	}
}

// TestGoldenQueryAgg pins the query layer's aggregate JSON over the
// corpus sweep for three group-by shapes (overall, per scheme, per
// pfail×scheme with a range filter), each across the full aggregate set
// — count, mean, min, max, p50, p90, p99 — and requires the answers to
// be identical over serially- and parallel-produced rows.
func TestGoldenQueryAgg(t *testing.T) {
	specs := []struct {
		Name string           `json:"name"`
		Spec vccmin.QuerySpec `json:"spec"`
	}{
		{"overall", vccmin.QuerySpec{
			Metrics: []string{"expected_capacity", "mean_ipc", "ipc_degradation", "energy_per_instruction"},
		}},
		{"by_scheme", vccmin.QuerySpec{
			GroupBy: []string{"scheme"},
			Metrics: []string{"expected_capacity", "ipc_degradation", "energy_per_instruction"},
		}},
		{"by_pfail_scheme_ranged", vccmin.QuerySpec{
			GroupBy:  []string{"pfail", "scheme"},
			Metrics:  []string{"mean_ipc", "measured_capacity", "voltage", "frequency"},
			PfailMax: func() *float64 { v := 0.001; return &v }(),
		}},
	}

	rows := goldenSweepRows(t, 1)
	parallelRows := goldenSweepRows(t, 8)
	type entry struct {
		Name   string              `json:"name"`
		Result *vccmin.QueryResult `json:"result"`
	}
	out := make([]entry, 0, len(specs))
	for _, s := range specs {
		res, err := vccmin.QuerySweepRows(rows, s.Spec)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		got, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		pres, err := vccmin.QuerySweepRows(parallelRows, s.Spec)
		if err != nil {
			t.Fatal(err)
		}
		pgot, err := json.Marshal(pres)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, pgot) {
			t.Fatalf("%s: query answer differs between workers=1 and workers=8 rows", s.Name)
		}
		out = append(out, entry{s.Name, res})
	}
	got, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "query_agg.json", append(got, '\n'))
}

// TestGoldenResumeStitch proves the golden stream is reachable through the
// resume path too: truncate the corpus output mid-stream (torn final
// line), resume, and require byte-identity with the golden file.
func TestGoldenResumeStitch(t *testing.T) {
	var full bytes.Buffer
	if _, err := vccmin.RunSweep(goldenSweepSpec(), &full); err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(full.Bytes(), []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("corpus too small to tear: %d lines", len(lines))
	}
	// Keep two complete rows plus a torn fragment of the third.
	torn := append([]byte{}, lines[0]...)
	torn = append(torn, lines[1]...)
	torn = append(torn, lines[2][:len(lines[2])/2]...)

	var rest bytes.Buffer
	res, err := vccmin.ResumeSweep(goldenSweepSpec(), bytes.NewReader(torn), &rest)
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != 2 || res.Computed != 2 {
		t.Fatalf("resume skipped %d computed %d, want 2 and 2", res.Skipped, res.Computed)
	}
	if res.ResumeTornBytes != int64(len(lines[2])/2) {
		t.Fatalf("ResumeTornBytes = %d, want %d", res.ResumeTornBytes, len(lines[2])/2)
	}
	if res.ResumeValidBytes != int64(len(lines[0])+len(lines[1])) {
		t.Fatalf("ResumeValidBytes = %d, want %d", res.ResumeValidBytes, len(lines[0])+len(lines[1]))
	}
	stitched := append(torn[:res.ResumeValidBytes], rest.Bytes()...)
	want, err := os.ReadFile(goldenPath("sweep_tiny.jsonl"))
	if err != nil {
		t.Skipf("golden file missing (run -update first): %v", err)
	}
	if !bytes.Equal(stitched, want) {
		t.Fatal("resume-stitched stream differs from the golden corpus")
	}
}

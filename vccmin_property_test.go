package vccmin_test

import (
	"math"
	"testing"

	"vccmin"
)

// TestAnalyticMatchesMonteCarloCapacity holds Eq. 2 against the mechanism
// it models: across a pfail ladder, the closed-form expected block-disable
// capacity must match the mean measured capacity of actually generated
// fault maps. With 512 blocks per map and 60 maps the standard error of
// the mean stays under 0.003 everywhere on the ladder, so a 0.01 absolute
// tolerance is ~3 sigma with deterministic seeds (no flakes).
func TestAnalyticMatchesMonteCarloCapacity(t *testing.T) {
	g := vccmin.ReferenceGeometry()
	const trials = 60
	for _, pfail := range []float64{1e-4, 3e-4, 1e-3, 3e-3, 1e-2} {
		want := vccmin.ExpectedBlockDisableCapacity(g, pfail)
		got := vccmin.MeasuredBlockDisableCapacity(g, pfail, trials, 12345)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("pfail %g: measured capacity %.4f vs analytic %.4f (|diff| > 0.01)",
				pfail, got, want)
		}
	}
}

// TestAnalyticCapacityMonotonicity: more faults can only cost capacity,
// in both the analytic and the measured view.
func TestAnalyticCapacityMonotonicity(t *testing.T) {
	g := vccmin.ReferenceGeometry()
	ladder := []float64{0, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2}
	for i := 1; i < len(ladder); i++ {
		lo := vccmin.ExpectedBlockDisableCapacity(g, ladder[i])
		hi := vccmin.ExpectedBlockDisableCapacity(g, ladder[i-1])
		if lo > hi {
			t.Errorf("analytic capacity rose with pfail: %.4f@%g > %.4f@%g",
				lo, ladder[i], hi, ladder[i-1])
		}
	}
	if c := vccmin.ExpectedBlockDisableCapacity(g, 0); c != 1 {
		t.Errorf("capacity at pfail 0 = %v, want 1", c)
	}
}

// TestGranularityCapacityOrdering: coarser disabling units lose capacity
// faster, so the capacity ordering follows the unit sizes. For the
// reference geometry (64 sets × 8 ways) a set unit spans 8 blocks and a
// way unit 64, so block ≥ set ≥ way; for a tall 4-set 16-way geometry the
// way unit (4 blocks) is smaller than the set unit (16), flipping the
// inner pair. Both orderings must come out of the same formula.
func TestGranularityCapacityOrdering(t *testing.T) {
	ladder := []float64{1e-4, 5e-4, 1e-3, 5e-3}

	ref := vccmin.ReferenceGeometry() // 64 sets, 8 ways: block >= set >= way
	for _, pfail := range ladder {
		block := vccmin.GranularityCapacity(ref, vccmin.GranularityBlock, pfail)
		set := vccmin.GranularityCapacity(ref, vccmin.GranularitySet, pfail)
		way := vccmin.GranularityCapacity(ref, vccmin.GranularityWay, pfail)
		if !(block >= set && set >= way) {
			t.Errorf("reference geometry, pfail %g: want block >= set >= way, got %.4f %.4f %.4f",
				pfail, block, set, way)
		}
		for name, c := range map[string]float64{"block": block, "set": set, "way": way} {
			if c < 0 || c > 1 {
				t.Errorf("pfail %g: %s capacity %v out of [0,1]", pfail, name, c)
			}
		}
	}

	tall, err := vccmin.NewGeometry(4096, 16, 64) // 4 sets, 16 ways: block >= way >= set
	if err != nil {
		t.Fatal(err)
	}
	for _, pfail := range ladder {
		block := vccmin.GranularityCapacity(tall, vccmin.GranularityBlock, pfail)
		set := vccmin.GranularityCapacity(tall, vccmin.GranularitySet, pfail)
		way := vccmin.GranularityCapacity(tall, vccmin.GranularityWay, pfail)
		if !(block >= way && way >= set) {
			t.Errorf("tall geometry, pfail %g: want block >= way >= set, got %.4f %.4f %.4f",
				pfail, block, way, set)
		}
	}
}

// TestMeasuredBlockDisableCapacityDeterminism: equal seeds reproduce the
// estimate exactly; different seeds vary it (it is a real Monte Carlo).
func TestMeasuredBlockDisableCapacityDeterminism(t *testing.T) {
	g := vccmin.ReferenceGeometry()
	a := vccmin.MeasuredBlockDisableCapacity(g, 1e-3, 10, 42)
	b := vccmin.MeasuredBlockDisableCapacity(g, 1e-3, 10, 42)
	if a != b {
		t.Fatalf("same seed produced %v then %v", a, b)
	}
	c := vccmin.MeasuredBlockDisableCapacity(g, 1e-3, 10, 43)
	if a == c {
		t.Fatalf("different seeds produced identical estimates %v", a)
	}
}

module vccmin

go 1.24

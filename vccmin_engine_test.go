package vccmin_test

import (
	"context"
	"encoding/json"
	"testing"

	"vccmin"
)

// TestFacadeBatchRun drives the facade's engine surface end to end: a
// heterogeneous batch, intra-batch deduplication, and persistence of
// results across engine restarts through a shared store directory.
func TestFacadeBatchRun(t *testing.T) {
	dir := t.TempDir()
	eng, err := vccmin.NewEngine(vccmin.EngineOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	items := []vccmin.BatchItem{
		{Kind: vccmin.TaskKindCapacity, Params: json.RawMessage(`{"pfail":0.001}`)},
		{Kind: vccmin.TaskKindOverhead},
		{Kind: vccmin.TaskKindCapacity, Params: json.RawMessage(`{"pfail":0.001,"workers":4}`)},
		{Kind: vccmin.TaskKindOperatingPoint, Params: json.RawMessage(`{"min_performance":0.5}`)},
	}
	out := vccmin.BatchRun(context.Background(), eng, items)
	if len(out) != 4 {
		t.Fatalf("got %d results", len(out))
	}
	for i, r := range out {
		if r.Error != "" {
			t.Fatalf("item %d: %s", i, r.Error)
		}
	}
	// The worker knob is scheduling-only: items 0 and 2 share identity.
	if out[0].Hash != out[2].Hash || string(out[0].Value) != string(out[2].Value) {
		t.Fatal("worker-only difference must deduplicate")
	}

	// A fresh engine over the same directory replays from disk.
	eng2, err := vccmin.NewEngine(vccmin.EngineOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	out2 := vccmin.BatchRun(context.Background(), eng2, items[:1])
	if out2[0].Source != "disk" {
		t.Fatalf("post-restart source %q, want disk", out2[0].Source)
	}
	if string(out2[0].Value) != string(out[0].Value) {
		t.Fatal("restarted engine replayed different bytes")
	}
}

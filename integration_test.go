package vccmin

import (
	"math"
	"testing"

	"vccmin/internal/faults"
	"vccmin/internal/sim"
)

// TestEmptyFaultMapEqualsBaseline: block-disabling with a fault-free map
// must be cycle-for-cycle identical to the baseline — the scheme's
// "no overhead when there are no faults" property, end to end.
func TestEmptyFaultMapEqualsBaseline(t *testing.T) {
	g := ReferenceGeometry()
	clean := &FaultPair{I: faults.NewEmpty(g, 32), D: faults.NewEmpty(g, 32)}
	for _, bench := range []string{"crafty", "swim"} {
		base, err := RunSim(SimOptions{Benchmark: bench, Mode: LowVoltage, Instructions: 40_000, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		bd, err := RunSim(SimOptions{Benchmark: bench, Mode: LowVoltage, Scheme: BlockDisable, Pair: clean, Instructions: 40_000, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if base.Stats != bd.Stats {
			t.Errorf("%s: clean block-disable diverged from baseline: %+v vs %+v", bench, bd.Stats, base.Stats)
		}
	}
}

// TestCacheLatencyMonotonicity: raising the L1 latency must never raise
// IPC — the property that makes word-disabling's alignment network a pure
// cost.
func TestCacheLatencyMonotonicity(t *testing.T) {
	prev := math.Inf(1)
	for _, lat := range []int{3, 4, 6} {
		machine := sim.Reference(sim.LowVoltage)
		machine.L1Latency = lat
		r, err := RunSim(SimOptions{Benchmark: "gcc", Mode: LowVoltage, Machine: &machine, Instructions: 40_000, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if r.IPC > prev+1e-12 {
			t.Errorf("IPC rose when L1 latency grew to %d: %v > %v", lat, r.IPC, prev)
		}
		prev = r.IPC
	}
}

// TestMemoryLatencyMonotonicity: slower memory must never help.
func TestMemoryLatencyMonotonicity(t *testing.T) {
	prev := math.Inf(1)
	for _, lat := range []int{51, 128, 255} {
		machine := sim.Reference(sim.LowVoltage)
		machine.MemLatency = lat
		r, err := RunSim(SimOptions{Benchmark: "mcf", Mode: LowVoltage, Machine: &machine, Instructions: 40_000, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if r.IPC > prev+1e-12 {
			t.Errorf("IPC rose when memory latency grew to %d: %v > %v", lat, r.IPC, prev)
		}
		prev = r.IPC
	}
}

// TestMoreFaultsNeverHelp: as pfail grows, block-disabling keeps less
// capacity and IPC falls (on the same benchmark and seed family).
func TestMoreFaultsNeverHelp(t *testing.T) {
	g := ReferenceGeometry()
	prevIPC := math.Inf(1)
	prevCap := 1.1
	for _, pf := range []float64{0.0005, 0.001, 0.002, 0.004} {
		pair := NewFaultPair(g, g, pf, 21)
		r, err := RunSim(SimOptions{Benchmark: "vortex", Mode: LowVoltage, Scheme: BlockDisable, Pair: pair, Instructions: 40_000, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if r.DCapacity > prevCap {
			t.Errorf("capacity rose with pfail=%v: %v > %v", pf, r.DCapacity, prevCap)
		}
		if r.IPC > prevIPC*1.02 { // tiny tolerance: different maps shuffle sets
			t.Errorf("IPC rose markedly with pfail=%v: %v > %v", pf, r.IPC, prevIPC)
		}
		prevIPC, prevCap = r.IPC, r.DCapacity
	}
}

// TestWholeRepoHeadlineOrdering is the paper's conclusion as a test:
// averaged across a benchmark sample, at low voltage
// baseline > BD+V$ > BD > WD, and at high voltage BD == baseline > WD.
func TestWholeRepoHeadlineOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("full ordering check is a longer run")
	}
	p := DefaultSimParams()
	p.Benchmarks = []string{"crafty", "gzip", "mesa", "swim", "gcc", "eon"}
	p.FaultPairs = 8
	p.Instructions = 60_000
	lv, err := RunLowVoltage(p)
	if err != nil {
		t.Fatal(err)
	}
	f8 := lv.Fig8()
	wd, bd, bdvc := f8.Averages[0], f8.Averages[1], f8.Averages[2]
	if !(wd < bd && bd < bdvc && bdvc < 1) {
		t.Errorf("low-voltage ordering violated: WD %v, BD %v, BD+V$ %v", wd, bd, bdvc)
	}
	// The headline: block-disabling with a victim cache beats
	// word-disabling by a clear margin.
	if bdvc/wd < 1.02 {
		t.Errorf("BD+V$ should beat WD clearly: ratio %v", bdvc/wd)
	}
	hv, err := RunHighVoltage(p)
	if err != nil {
		t.Fatal(err)
	}
	f11 := hv.Fig11()
	if f11.Averages[1] != 1 {
		t.Errorf("high-voltage block-disable average %v, want exactly 1", f11.Averages[1])
	}
	if f11.Averages[0] >= 1 {
		t.Errorf("high-voltage word-disable average %v, want < 1", f11.Averages[0])
	}
}

// TestClusteredFaultFacade covers the clustered fault-map facade.
func TestClusteredFaultFacade(t *testing.T) {
	g := ReferenceGeometry()
	u := NewFaultMap(g, 0.002, 5)
	c := NewClusteredFaultMap(g, 0.002, 8, 5)
	if c.Total == 0 {
		t.Fatal("clustered map empty")
	}
	if c.FaultyBlocks() >= u.FaultyBlocks() {
		t.Errorf("clustered faults should hit fewer blocks: %d vs %d", c.FaultyBlocks(), u.FaultyBlocks())
	}
	if one := NewClusteredFaultMap(g, 0.001, 1, 9); one.Total == 0 {
		t.Error("cluster size 1 should behave like the uniform model")
	}
}

// TestWarmupChangesMeasurementNotState: with and without warmup the runs
// are deterministic, and warmup removes the cold-start penalty.
func TestWarmupChangesMeasurementNotState(t *testing.T) {
	base := SimOptions{Benchmark: "gzip", Mode: LowVoltage, Instructions: 40_000, Seed: 4}
	warm := base
	warm.Warmup = 40_000
	cold := base
	cold.Warmup = -1
	w, err := RunSim(warm)
	if err != nil {
		t.Fatal(err)
	}
	c, err := RunSim(cold)
	if err != nil {
		t.Fatal(err)
	}
	if w.IPC <= c.IPC {
		t.Errorf("warmed run should beat cold run: %v vs %v", w.IPC, c.IPC)
	}
	w2, err := RunSim(warm)
	if err != nil {
		t.Fatal(err)
	}
	if w.Stats != w2.Stats {
		t.Error("warmed runs not deterministic")
	}
}
